package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/richnote/richnote/internal/cluster"
	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/pubsub"
	"github.com/richnote/richnote/internal/transport"
	"github.com/richnote/richnote/internal/wal"
)

// Router is the stateless HTTP front of a multi-node deployment (DESIGN.md
// §13). It serves the same HTTP/JSON API as a standalone Server but owns no
// shard state: each request is routed by the user ring to the owning node
// and forwarded over the binary transport. The router doubles as the
// cluster coordinator — it computes the initial shard map, probes node
// health, commands crash takeover on death, admits joining nodes and
// drives the grow rebalance (DESIGN.md §15), and on its own restart
// rebuilds the map from what the nodes report owning rather than
// recomputing from seed placement.
//
// The map never lies: ownership is published only after the owning node
// acknowledged the adopt, a failed takeover leaves the shard explicitly
// unassigned on a retry list re-driven every probe pass, and a failed
// planned move rolls the shard back onto its source.
//
// Backpressure propagates end-to-end: a node's ErrBackpressure becomes the
// router's 429 with the node's Retry-After; an unreachable or non-owning
// node becomes a 503 with Retry-After, since a map update is usually
// seconds away.
type Router struct {
	shards int
	ring   *ring
	cfg    RouterConfig

	// membership is set once in Start; the join handler reads it from the
	// transport goroutine, hence the atomic pointer.
	membership atomic.Pointer[cluster.Membership] // richnote:atomic

	cmap atomic.Pointer[cluster.Map] // richnote:atomic

	// rebalanceMu serializes map transitions (initial assignment, death
	// rebalances, planned moves, join rebalances, adopt retries) so
	// versions advance linearly.
	rebalanceMu sync.Mutex

	// peerMu guards the node registry. It was construction-frozen before
	// joins existed; now FrameJoin admits new nodes and a rejoin can move
	// a name to a new address, so every lookup goes through an accessor.
	peerMu    sync.RWMutex
	clients   map[string]*transport.Client // node name → transport client
	forwarded map[string]*atomic.Uint64    // node name → publishes forwarded
	nodeUp    map[string]*atomic.Bool      // node name → last probe/forward verdict

	// pending is the adopt-retry set: shards the map honestly records as
	// unassigned because a takeover adopt (or a move rollback) failed,
	// mapped to the number of probe passes to skip before retrying. Every
	// pass decrements; at zero the shard is re-driven onto its
	// consistent-hash owner over the live set.
	pendingMu sync.Mutex
	pending   map[int]int

	// joining single-flights the per-node rebalance goroutine that a join
	// announce schedules, so a one-second announce loop cannot stack
	// concurrent rebalances for the same node.
	joiningMu sync.Mutex
	joining   map[string]bool

	// lastRounds caches each shard's last observed round from tick and
	// health responses, so a dead or unassigned shard reports its
	// last-known round instead of a zero that reads as "reset". The slice
	// header is set once in NewRouter and never reassigned; each element
	// is its own atomic.
	lastRounds []atomic.Int64

	ts *transport.Server // join listener; nil when cfg.Listen is empty

	handoffs atomic.Uint64 // richnote:atomic — shards reassigned by this coordinator

	latMu      sync.Mutex
	fwdLatency metrics.Histogram // forward round-trip seconds; richnote:confined(latMu)
}

// rejoinGracePasses is how many probe passes restart recovery waits
// before force-adopting a shard nobody reported owning. The owner may be
// a post-seed joiner the restarted router's seed list does not know; its
// announce loop usually folds it back in well inside the grace.
const rejoinGracePasses = 3

// RouterConfig configures a Router; Peers and Shards are required.
type RouterConfig struct {
	// Shards is the cluster-wide shard count; must match every node's
	// Config.Shards.
	Shards int
	// Peers is the static seed membership: every shard-owner node's name
	// and transport address. Nodes beyond the seed join at runtime by
	// announcing to Listen.
	Peers []cluster.Node
	// Listen is the router's own cluster-transport address, serving node
	// join announces (FrameJoin). Empty disables joins.
	Listen string
	// ProbeInterval is the health-probe period; defaults to 500ms.
	ProbeInterval time.Duration
	// ProbeThreshold is the consecutive-failure count declaring a node
	// dead; defaults to 2.
	ProbeThreshold int
	// RetryAfter is advertised on 503 responses while the map is catching
	// up with a dead node; defaults to 1s.
	RetryAfter time.Duration
	// Client tunes the per-node transport clients.
	Client transport.ClientConfig
}

// NewRouter builds a router over a static peer set. Start performs the
// initial shard assignment (or restart recovery) and begins health
// probing.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("server: router needs a positive shard count, got %d", cfg.Shards)
	}
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("server: router needs at least one peer")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeThreshold <= 0 {
		cfg.ProbeThreshold = 2
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	r := &Router{
		shards:     cfg.Shards,
		ring:       newRing(cfg.Shards, 0),
		cfg:        cfg,
		clients:    make(map[string]*transport.Client, len(cfg.Peers)),
		forwarded:  make(map[string]*atomic.Uint64, len(cfg.Peers)),
		nodeUp:     make(map[string]*atomic.Bool, len(cfg.Peers)),
		pending:    make(map[int]int),
		joining:    make(map[string]bool),
		lastRounds: make([]atomic.Int64, cfg.Shards),
	}
	byAddr := make(map[string]string, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if _, dup := r.clients[p.Name]; dup {
			return nil, fmt.Errorf("server: duplicate peer name %q", p.Name)
		}
		// Duplicate addresses would make nameForAddr ambiguous and land
		// probe verdicts on the wrong node.
		if prev, dup := byAddr[p.Addr]; dup {
			return nil, fmt.Errorf("server: peers %q and %q share address %q", prev, p.Name, p.Addr)
		}
		byAddr[p.Addr] = p.Name
		r.clients[p.Name] = transport.NewClient(p.Addr, cfg.Client)
		r.forwarded[p.Name] = &atomic.Uint64{}
		up := &atomic.Bool{}
		up.Store(true)
		r.nodeUp[p.Name] = up
	}
	return r, nil
}

// client returns the transport client for a node name, nil if unknown.
func (r *Router) client(name string) *transport.Client {
	r.peerMu.RLock()
	defer r.peerMu.RUnlock()
	return r.clients[name]
}

// isUp reports the node's last probe/forward verdict; false for unknown.
func (r *Router) isUp(name string) bool {
	r.peerMu.RLock()
	up := r.nodeUp[name]
	r.peerMu.RUnlock()
	return up != nil && up.Load()
}

func (r *Router) setUp(name string, up bool) {
	r.peerMu.RLock()
	b := r.nodeUp[name]
	r.peerMu.RUnlock()
	if b != nil {
		b.Store(up)
	}
}

func (r *Router) countForward(name string) {
	r.peerMu.RLock()
	c := r.forwarded[name]
	r.peerMu.RUnlock()
	if c != nil {
		c.Add(1)
	}
}

// peerNames returns every registered node name, sorted.
func (r *Router) peerNames() []string {
	r.peerMu.RLock()
	names := make([]string, 0, len(r.clients))
	for name := range r.clients {
		names = append(names, name)
	}
	r.peerMu.RUnlock()
	sort.Strings(names)
	return names
}

func (r *Router) nameForAddr(addr string) string {
	r.peerMu.RLock()
	defer r.peerMu.RUnlock()
	for name, c := range r.clients {
		if c.Addr() == addr {
			return name
		}
	}
	return ""
}

// registerPeer installs (or re-addresses) a node in the registry. A
// rejoining node usually comes back on a new port; its old client is
// closed and replaced. The node starts presumed up — it just answered
// the join dial-back.
func (r *Router) registerPeer(n cluster.Node) {
	r.peerMu.Lock()
	defer r.peerMu.Unlock()
	if c := r.clients[n.Name]; c != nil {
		if c.Addr() != n.Addr {
			c.Close()
			r.clients[n.Name] = transport.NewClient(n.Addr, r.cfg.Client)
		}
	} else {
		r.clients[n.Name] = transport.NewClient(n.Addr, r.cfg.Client)
	}
	if r.forwarded[n.Name] == nil {
		r.forwarded[n.Name] = &atomic.Uint64{}
	}
	up := r.nodeUp[n.Name]
	if up == nil {
		up = &atomic.Bool{}
		r.nodeUp[n.Name] = up
	}
	up.Store(true)
}

// Start brings the coordinator up: open the join listener (if
// configured), establish the initial map — fresh assignment over the
// seed peers, or restart recovery from node-reported ownership — and
// begin health probing.
func (r *Router) Start() error {
	r.rebalanceMu.Lock()
	defer r.rebalanceMu.Unlock()

	if r.cfg.Listen != "" {
		ts, err := transport.Listen(r.cfg.Listen, r)
		if err != nil {
			return fmt.Errorf("server: router join listener: %w", err)
		}
		r.ts = ts
	}

	m, err := r.initialMap()
	if err != nil {
		if r.ts != nil {
			r.ts.Close()
			r.ts = nil
		}
		return err
	}
	r.broadcastMap(m)
	r.cmap.Store(m)

	// The membership probe is a transport ping: one small frame through
	// the same pooled client the data path uses, so "healthy" means the
	// path requests take is healthy.
	probe := func(addr string) error {
		name := r.nameForAddr(addr)
		if name == "" {
			return fmt.Errorf("server: probe for unknown peer address %s", addr)
		}
		_, _, err := r.client(name).Call(FramePing, nil)
		r.setUp(name, err == nil)
		return err
	}
	ms := cluster.NewMembership(r.cfg.Peers, probe, cluster.MembershipConfig{
		Interval:  r.cfg.ProbeInterval,
		Threshold: r.cfg.ProbeThreshold,
	})
	ms.OnChange(r.onMembershipChange)
	ms.OnProbe(r.retryAdopts)
	r.membership.Store(ms)
	ms.Start()
	return nil
}

// initialMap establishes the map Start publishes. It first asks every
// seed peer what it currently owns: a fresh cluster reports nothing and
// gets the consistent-hash assignment; any reported ownership means this
// router is restarting over a live cluster and must rebuild the map from
// the truth on the nodes — recomputing from seed placement would
// silently disown every post-seed move. Callers hold rebalanceMu.
func (r *Router) initialMap() (*cluster.Map, error) {
	peers := append([]cluster.Node(nil), r.cfg.Peers...)
	sort.Slice(peers, func(i, j int) bool { return peers[i].Name < peers[j].Name })

	type report struct {
		node cluster.Node
		h    nodeHealth
	}
	var reports []report
	var reachable []cluster.Node
	anyOwned := false
	for _, p := range peers {
		_, raw, err := r.client(p.Name).Call(FrameHealth, nil)
		if err != nil {
			r.setUp(p.Name, false)
			continue
		}
		d := wal.NewDecoder(raw)
		h := decodeNodeHealth(d)
		if decodeErr(d, "health response") != nil {
			continue
		}
		reachable = append(reachable, p)
		reports = append(reports, report{node: p, h: h})
		if len(h.OwnedShards) > 0 {
			anyOwned = true
		}
	}

	if !anyOwned {
		// Fresh cluster: version 1 over every seed peer, each adopting its
		// assigned shards from (empty) shared storage. A peer that cannot
		// take its assignment fails startup, exactly as before.
		m, err := cluster.Compute(1, r.cfg.Peers, r.shards)
		if err != nil {
			return nil, err
		}
		for _, n := range m.Nodes {
			for _, shard := range m.OwnedBy(n.Name) {
				if err := r.commandAdopt(n.Name, shard); err != nil {
					return nil, fmt.Errorf("server: initial assignment of shard %d to %s: %w", shard, n.Name, err)
				}
			}
		}
		return m, nil
	}

	// Restart recovery: ownership is what the nodes report. A conflict —
	// two nodes claiming one shard, possible only if the previous
	// coordinator died mid-move — resolves to the first claimant in name
	// order; the loser's claim goes stale with the map broadcast below.
	version := uint64(0)
	owners := make([]string, r.shards)
	for _, rep := range reports {
		if rep.h.MapVersion > version {
			version = rep.h.MapVersion
		}
		for i, s := range rep.h.OwnedShards {
			if s < 0 || s >= r.shards {
				continue
			}
			if owners[s] == "" {
				owners[s] = rep.node.Name
			}
			if i < len(rep.h.Rounds) {
				r.lastRounds[s].Store(int64(rep.h.Rounds[i]))
			}
		}
	}
	// Shards nobody reported stay honestly unassigned, queued for adopt
	// retry after a short grace: their owner may be a post-seed joiner
	// this router's seed list does not know about yet, and its announce
	// loop will fold it back in (foldReportedOwnership) before the grace
	// expires in the common case.
	for s, owner := range owners {
		if owner == "" {
			r.addPending(s, rejoinGracePasses)
		}
	}
	m, err := cluster.Assemble(version+1, reachable, r.shards, owners)
	if err != nil {
		return nil, fmt.Errorf("server: restart recovery: %w", err)
	}
	return m, nil
}

// Stop halts the join listener and probing and drops every node
// connection. Shard-owner nodes keep serving; only this front goes away.
func (r *Router) Stop() {
	if r.ts != nil {
		r.ts.Close()
		r.ts = nil
	}
	if ms := r.membership.Load(); ms != nil {
		ms.Stop()
	}
	r.peerMu.Lock()
	defer r.peerMu.Unlock()
	for _, c := range r.clients {
		c.Close()
	}
}

// Map returns the current cluster map (nil before Start completes).
func (r *Router) Map() *cluster.Map { return r.cmap.Load() }

// Handoffs returns how many shard reassignments this coordinator has
// commanded (crash takeovers + planned moves).
func (r *Router) Handoffs() uint64 { return r.handoffs.Load() }

// Membership exposes the health prober, mainly so tests can force a
// CheckNow instead of waiting out probe intervals.
func (r *Router) Membership() *cluster.Membership { return r.membership.Load() }

// ClusterAddr returns the join listener's address; "" when joins are
// disabled (no cfg.Listen) or before Start.
func (r *Router) ClusterAddr() string {
	if r.ts == nil {
		return ""
	}
	return r.ts.Addr()
}

// Pending returns the ascending list of shards awaiting an adopt retry.
func (r *Router) Pending() []int {
	r.pendingMu.Lock()
	shards := make([]int, 0, len(r.pending))
	for s := range r.pending {
		shards = append(shards, s)
	}
	r.pendingMu.Unlock()
	sort.Ints(shards)
	return shards
}

func (r *Router) addPending(shard, grace int) {
	r.pendingMu.Lock()
	r.pending[shard] = grace
	r.pendingMu.Unlock()
}

func (r *Router) clearPending(shard int) {
	r.pendingMu.Lock()
	delete(r.pending, shard)
	r.pendingMu.Unlock()
}

// onMembershipChange is the takeover coordinator: on node death it
// recomputes the target assignment over the survivors and commands crash
// takeover of every orphaned shard. Only adoptions the owning node
// acknowledged are published; a failed adopt leaves the shard explicitly
// unassigned and queued for retry — the map must never claim ownership
// the cluster does not have. Runs on the membership's probe goroutine.
func (r *Router) onMembershipChange(live []cluster.Node) {
	r.rebalanceMu.Lock()
	defer r.rebalanceMu.Unlock()

	old := r.cmap.Load()
	if old == nil || len(live) == 0 {
		return // nothing to reassign to; requests will 503 until nodes return
	}
	target, err := old.Rebalance(old.Version+1, live)
	if err != nil {
		return
	}
	liveNames := make(map[string]bool, len(live))
	for _, n := range live {
		liveNames[n.Name] = true
	}
	owners := old.OwnerNames()
	for s := 0; s < r.shards; s++ {
		was, now := owners[s], target.Owner(s).Name
		if was == now || now == "" {
			continue
		}
		if was != "" && liveNames[was] {
			// The current owner is alive: this is a planned-move target (a
			// joiner's hash share), not an orphan. Planned moves go through
			// the freeze/verify path (rebalanceOnto), never a blind adopt.
			continue
		}
		if err := r.commandAdopt(now, s); err != nil {
			// The target could not take the shard (transport failure or
			// replay error). Record it unassigned and retry on subsequent
			// probe passes; honest failure beats a map that lies about
			// ownership.
			owners[s] = ""
			r.addPending(s, 0)
			continue
		}
		owners[s] = now
		r.clearPending(s)
		r.handoffs.Add(1)
	}
	next, err := cluster.Assemble(old.Version+1, live, r.shards, owners)
	if err != nil {
		return
	}
	r.broadcastMap(next)
	r.cmap.Store(next)
}

// retryAdopts re-drives adoption of unassigned shards after every probe
// pass: the honest map records them as nobody's, and this loop turns
// honesty back into coverage once a node can take them. Runs on the
// membership's probe goroutine (and from CheckNow's caller in tests).
func (r *Router) retryAdopts(live []cluster.Node) {
	if len(live) == 0 {
		return
	}
	r.pendingMu.Lock()
	due := make([]int, 0, len(r.pending))
	for s, grace := range r.pending {
		if grace > 0 {
			r.pending[s] = grace - 1
			continue
		}
		due = append(due, s)
	}
	r.pendingMu.Unlock()
	if len(due) == 0 {
		return
	}
	sort.Ints(due)

	r.rebalanceMu.Lock()
	defer r.rebalanceMu.Unlock()
	m := r.cmap.Load()
	if m == nil {
		return
	}
	base, err := cluster.Compute(m.Version+1, live, r.shards)
	if err != nil {
		return
	}
	owners := m.OwnerNames()
	changed := false
	for _, s := range due {
		if owners[s] != "" {
			// Someone folded the shard back in since it was queued (a
			// rejoining owner reported it); nothing to adopt.
			r.clearPending(s)
			continue
		}
		target := base.Owner(s).Name
		if err := r.commandAdopt(target, s); err != nil {
			continue // still failing; the next pass retries
		}
		owners[s] = target
		r.clearPending(s)
		r.handoffs.Add(1)
		changed = true
	}
	if !changed {
		return
	}
	next, err := cluster.Assemble(m.Version+1, unionNodes(m.Nodes, live), r.shards, owners)
	if err != nil {
		return
	}
	r.broadcastMap(next)
	r.cmap.Store(next)
}

// unionNodes merges two node sets by name, preferring b's address (the
// fresher live set) on overlap.
func unionNodes(a, b []cluster.Node) []cluster.Node {
	byName := make(map[string]cluster.Node, len(a)+len(b))
	for _, n := range a {
		byName[n.Name] = n
	}
	for _, n := range b {
		byName[n.Name] = n
	}
	out := make([]cluster.Node, 0, len(byName))
	for _, n := range byName {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// commandAdopt tells a node to take over one shard from shared storage
// (crash takeover: snapshot + WAL tail replay).
func (r *Router) commandAdopt(node string, shard int) error {
	c := r.client(node)
	if c == nil {
		return fmt.Errorf("server: no client for node %q", node)
	}
	var e wal.Encoder
	e.U32(uint32(shard))
	e.U8(adoptFromWAL)
	_, _, err := c.Call(FrameAdopt, e.Bytes())
	return err
}

// broadcastMap ships a map to every reachable node. A node that misses the
// update learns the version lag from forwarded publishes' map versions and
// the next broadcast; the router never blocks on a dead node here.
func (r *Router) broadcastMap(m *cluster.Map) {
	payload := m.Encode()
	for _, n := range m.Nodes {
		if c := r.client(n.Name); c != nil {
			_, _, _ = c.Call(FrameMapUpdate, payload)
		}
	}
}

// MoveShard performs a planned handoff: freeze the shard on its current
// owner, ship the snapshot bytes to the target over the transport, verify
// the restored state is bit-identical, and publish the updated map.
func (r *Router) MoveShard(shard int, target string) error {
	r.rebalanceMu.Lock()
	defer r.rebalanceMu.Unlock()
	return r.moveShardLocked(shard, target)
}

// moveShardLocked is MoveShard under an already-held rebalanceMu (the
// join rebalance drives several moves in one critical section).
//
// Failure discipline: after a successful freeze the source no longer
// serves the shard, so every failure exit must put the state back
// somewhere real. An adopt failure — transport error, adopt rejection,
// decode error or state mismatch — rolls back by re-adopting the frozen
// snapshot on the source (whose slot recycles for exactly this), leaving
// the map untouched and the shard serving where it was. If even the
// rollback fails, the shard is recorded unassigned and queued for adopt
// retry; its state is safe in the source's WAL dir, which the
// adopt-from-WAL retry path restores from.
func (r *Router) moveShardLocked(shard int, target string) error {
	m := r.cmap.Load()
	if m == nil {
		return fmt.Errorf("server: router has no map yet")
	}
	if shard < 0 || shard >= r.shards {
		return fmt.Errorf("server: shard %d out of range [0,%d)", shard, r.shards)
	}
	src := m.Owner(shard)
	if src.Name == "" {
		return fmt.Errorf("server: shard %d has no owner to move from (awaiting adopt retry)", shard)
	}
	if src.Name == target {
		return nil
	}
	targetClient := r.client(target)
	if targetClient == nil {
		return fmt.Errorf("server: unknown target node %q", target)
	}
	next, err := m.WithOwner(m.Version+1, shard, target)
	if err != nil {
		return err
	}

	var e wal.Encoder
	e.U32(uint32(shard))
	_, resp, err := r.client(src.Name).Call(FrameFreeze, e.Bytes())
	if err != nil {
		// Nothing shipped; the source either still serves the shard or
		// rejected the freeze. The map is untouched either way.
		return fmt.Errorf("server: freezing shard %d on %s: %w", shard, src.Name, err)
	}
	d := wal.NewDecoder(resp)
	snap, frozenState := d.Str(), d.Str()
	if err := decodeErr(d, "freeze response"); err != nil {
		// The node replied non-error, so it did freeze; only the reply is
		// garbled. Roll back with whatever decoded — a corrupt snapshot
		// fails the source's CRC check and degrades to the unassigned +
		// retry path, which restores from the source's on-disk state.
		return r.failedMove(shard, src.Name, snap, err)
	}

	e.Reset()
	e.U32(uint32(shard))
	e.U8(adoptBytes)
	e.Str(snap)
	_, resp, err = targetClient.Call(FrameAdopt, e.Bytes())
	if err != nil {
		return r.failedMove(shard, src.Name, snap, fmt.Errorf("server: adopting shard %d on %s: %w", shard, target, err))
	}
	d = wal.NewDecoder(resp)
	adoptedState := d.Str()
	if err := decodeErr(d, "adopt response"); err != nil {
		return r.failedMove(shard, src.Name, snap, err)
	}
	if adoptedState != frozenState {
		// Never publish ownership of state that is not bit-identical.
		// Freeze the target's divergent copy back out of service, then
		// restore the source.
		var fe wal.Encoder
		fe.U32(uint32(shard))
		_, _, _ = targetClient.Call(FrameFreeze, fe.Bytes())
		return r.failedMove(shard, src.Name, snap, fmt.Errorf("server: shard %d handoff state mismatch: source froze %d bytes, target restored %d bytes (not bit-identical)", shard, len(frozenState), len(adoptedState)))
	}

	r.broadcastMap(next)
	r.cmap.Store(next)
	r.handoffs.Add(1)
	return nil
}

// failedMove rolls a failed planned handoff back onto the source: the
// frozen snapshot re-adopts into the slot it came from, so the shard
// keeps serving and the map needs no change. If the rollback itself
// fails, the shard is recorded unassigned — the honest state — and
// queued for adopt retry from the source's WAL dir.
func (r *Router) failedMove(shard int, src, snap string, cause error) error {
	var e wal.Encoder
	e.U32(uint32(shard))
	e.U8(adoptBytes)
	e.Str(snap)
	if c := r.client(src); c != nil {
		if _, resp, err := c.Call(FrameAdopt, e.Bytes()); err == nil {
			d := wal.NewDecoder(resp)
			d.Str()
			if decodeErr(d, "rollback adopt response") == nil {
				return fmt.Errorf("server: shard %d move failed, rolled back to %s: %w", shard, src, cause)
			}
		}
	}
	m := r.cmap.Load()
	if m != nil {
		if next, err := m.WithoutOwner(m.Version+1, shard); err == nil {
			r.broadcastMap(next)
			r.cmap.Store(next)
		}
	}
	r.addPending(shard, 0)
	return fmt.Errorf("server: shard %d move failed (%v) and rollback to %s failed; shard unassigned, queued for adopt retry", shard, cause, src)
}

// ServeFrame implements transport.Handler: the router's own cluster
// listener, serving node join announces (plus ping, so joiners can
// health-check the coordinator before announcing).
func (r *Router) ServeFrame(typ byte, payload []byte) (byte, []byte, error) {
	var e wal.Encoder
	switch typ {
	case FramePing:
		e.Str("router")
		return FramePong, e.Bytes(), nil
	case FrameJoin:
		d := wal.NewDecoder(payload)
		jr := decodeJoinReq(d)
		if err := decodeErr(d, "join request"); err != nil {
			return 0, nil, err
		}
		encodeJoinResp(&e, r.handleJoin(jr))
		return FrameJoinResp, e.Bytes(), nil
	default:
		return 0, nil, fmt.Errorf("server: router: unknown frame type %d", typ)
	}
}

// handleJoin validates and admits one node announce (DESIGN.md §15). The
// checks guard the map's integrity: shard-count agreement (a joiner with
// a different shard space cannot host anything), a WAL dir (handoffs
// ship snapshots the node must persist), name/address uniqueness against
// the live set, and a dial-back ping proving the advertised address
// answers as the name it claims. Admission registers the peer, revives
// it in membership, folds in any ownership it already reports, and
// schedules the grow rebalance on its own goroutine — announces must not
// block behind snapshot shipping.
func (r *Router) handleJoin(jr joinReq) joinResp {
	ver := uint64(0)
	if m := r.cmap.Load(); m != nil {
		ver = m.Version
	}
	reject := func(format string, args ...any) joinResp {
		return joinResp{Status: joinRejected, MapVersion: ver, ErrText: fmt.Sprintf(format, args...)}
	}
	if jr.Name == "" || jr.Addr == "" {
		return reject("join needs a node name and address")
	}
	if jr.Shards != r.shards {
		return reject("cluster runs %d shards, joiner %q runs %d", r.shards, jr.Name, jr.Shards)
	}
	if jr.WALDir == "" {
		return reject("join requires a WAL dir: handoffs ship snapshots the node must persist")
	}
	ms := r.membership.Load()
	if ms == nil {
		return reject("router is not started")
	}
	for _, n := range ms.Live() {
		if n.Name == jr.Name && n.Addr == jr.Addr {
			// A live member announcing again: idempotent. Still nudge the
			// rebalance — a previous run may have been cut short by failed
			// moves, and re-driving a settled assignment is a no-op.
			r.scheduleRebalance(jr.Name)
			return joinResp{Status: joinAlreadyMember, MapVersion: ver}
		}
		if n.Name == jr.Name {
			return reject("node name %q is live at %s; refusing the ambiguous identity", jr.Name, n.Addr)
		}
		if n.Addr == jr.Addr {
			return reject("address %s already serves live node %q", jr.Addr, n.Name)
		}
	}

	// Dial back before admitting: the advertised address must answer a
	// ping as the name it claims, or the map would route shard traffic
	// into a black hole.
	probe := transport.NewClient(jr.Addr, r.cfg.Client)
	_, pong, err := probe.Call(FramePing, nil)
	probe.Close()
	if err != nil {
		return reject("joiner %q unreachable at %s: %v", jr.Name, jr.Addr, err)
	}
	pd := wal.NewDecoder(pong)
	if got := pd.Str(); pd.Err() != nil || got != jr.Name {
		return reject("address %s answered ping as %q, not %q", jr.Addr, got, jr.Name)
	}

	n := cluster.Node{Name: jr.Name, Addr: jr.Addr}
	r.registerPeer(n)
	ms.Admit(n)
	r.foldReportedOwnership(jr.Name)
	r.scheduleRebalance(jr.Name)
	return joinResp{Status: joinAccepted, MapVersion: ver}
}

// foldReportedOwnership asks a just-admitted node what it owns and
// records those claims for every shard the map holds unassigned: restart
// recovery leaves a post-seed joiner's shards unassigned until its
// announce arrives here. Claims that contradict a live assignment are
// ignored — the router's map is the coordination truth, and the loser
// learns its staleness from the next broadcast.
func (r *Router) foldReportedOwnership(name string) {
	c := r.client(name)
	if c == nil {
		return
	}
	_, raw, err := c.Call(FrameHealth, nil)
	if err != nil {
		return
	}
	d := wal.NewDecoder(raw)
	h := decodeNodeHealth(d)
	if decodeErr(d, "health response") != nil || len(h.OwnedShards) == 0 {
		return
	}

	r.rebalanceMu.Lock()
	defer r.rebalanceMu.Unlock()
	m := r.cmap.Load()
	if m == nil {
		return
	}
	owners := m.OwnerNames()
	changed := false
	for i, s := range h.OwnedShards {
		if s < 0 || s >= r.shards || owners[s] != "" {
			continue
		}
		owners[s] = name
		changed = true
		r.clearPending(s)
		if i < len(h.Rounds) {
			r.lastRounds[s].Store(int64(h.Rounds[i]))
		}
	}
	if !changed {
		return
	}
	nodes := m.Nodes
	if m.NodeAddr(name) == "" {
		nodes = unionNodes(m.Nodes, []cluster.Node{{Name: name, Addr: c.Addr()}})
	}
	next, err := cluster.Assemble(m.Version+1, nodes, r.shards, owners)
	if err != nil {
		return
	}
	r.broadcastMap(next)
	r.cmap.Store(next)
}

// scheduleRebalance launches rebalanceOnto(name) once; repeat announces
// while one is in flight are dropped.
func (r *Router) scheduleRebalance(name string) {
	r.joiningMu.Lock()
	if r.joining[name] {
		r.joiningMu.Unlock()
		return
	}
	r.joining[name] = true
	r.joiningMu.Unlock()
	go r.rebalanceOnto(name)
}

// rebalanceOnto drives the grow rebalance for one admitted node: extend
// the map's membership, then move the joiner's consistent-hash share to
// it one byte-verified planned handoff at a time, each advancing the map
// version. A failed move leaves its shard serving on the source (or
// queued for adopt retry) and the loop simply continues; the next
// announce re-drives whatever is left.
func (r *Router) rebalanceOnto(name string) {
	defer func() {
		r.joiningMu.Lock()
		delete(r.joining, name)
		r.joiningMu.Unlock()
	}()

	r.rebalanceMu.Lock()
	defer r.rebalanceMu.Unlock()

	m := r.cmap.Load()
	ms := r.membership.Load()
	if m == nil || ms == nil {
		return
	}
	target, err := m.Rebalance(m.Version+1, ms.Live())
	if err != nil {
		return
	}

	// Membership extension first, owners unchanged: every subsequent
	// WithOwner must be able to name the joiner.
	if m.NodeAddr(name) == "" {
		interim, err := cluster.Assemble(m.Version+1, target.Nodes, r.shards, m.OwnerNames())
		if err != nil {
			return
		}
		r.broadcastMap(interim)
		r.cmap.Store(interim)
	}

	for s := 0; s < r.shards; s++ {
		if target.Owner(s).Name != name {
			continue
		}
		cur := r.cmap.Load().Owner(s).Name
		if cur == name {
			continue
		}
		if cur == "" {
			// An unassigned orphan whose hash lands on the joiner: crash
			// adopt from shared storage, no source to freeze.
			if err := r.commandAdopt(name, s); err != nil {
				continue
			}
			mm := r.cmap.Load()
			next, err := mm.WithOwner(mm.Version+1, s, name)
			if err != nil {
				continue
			}
			r.broadcastMap(next)
			r.cmap.Store(next)
			r.clearPending(s)
			r.handoffs.Add(1)
			continue
		}
		// Planned, byte-verified move; failure rolls back to the source.
		_ = r.moveShardLocked(s, name)
	}
}

// RouterHealthResponse is the router's GET /healthz body: its own status
// plus one entry per node, aggregated live over the transport.
type RouterHealthResponse struct {
	Status     string `json:"status"`
	Role       string `json:"role"`
	MapVersion uint64 `json:"map_version"`
	Shards     int    `json:"shards"`
	// UnassignedShards lists shards the map honestly records as owned by
	// nobody (failed takeover adopts awaiting retry).
	UnassignedShards []int              `json:"unassigned_shards,omitempty"`
	Nodes            []RouterNodeHealth `json:"nodes"`
}

// RouterNodeHealth is one node's slice of the router's health report.
type RouterNodeHealth struct {
	Name        string   `json:"name"`
	Addr        string   `json:"addr"`
	Up          bool     `json:"up"`
	MapVersion  uint64   `json:"map_version,omitempty"`
	OwnedShards []int    `json:"owned_shards"`
	Rounds      []int    `json:"rounds"`
	Users       int      `json:"users"`
	QueueDepth  int      `json:"queue_depth"`
	Errors      []string `json:"errors,omitempty"`
}

// Handler returns the router's HTTP API — the same surface a standalone
// Server exposes, served by forwarding.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/publish", r.handlePublish)
	mux.HandleFunc("GET /v1/users/{id}/deliveries", r.handleDeliveries)
	mux.HandleFunc("POST /v1/tick", r.handleTick)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	return mux
}

func (r *Router) retrySeconds() int { return retryAfterSeconds(r.cfg.RetryAfter) }

// forwardPublish routes one recipient's publication to the owning node.
// The returned outcome folds transport failures into publishError so the
// caller only reasons about the four status codes.
func (r *Router) forwardPublish(topic pubsub.TopicID, user notif.UserID, item notif.Item) publishOutcome {
	m := r.cmap.Load()
	if m == nil {
		return publishOutcome{status: publishError, errText: "router has no shard map yet"}
	}
	shard := r.ring.shardFor(user)
	owner := m.Owner(shard)
	if owner.Name == "" {
		return publishOutcome{status: publishNotOwner, errText: fmt.Sprintf("shard %d is unassigned (takeover retry in progress)", shard)}
	}
	c := r.client(owner.Name)
	if c == nil || !r.isUp(owner.Name) {
		return publishOutcome{status: publishNotOwner, errText: fmt.Sprintf("node %s (shard %d) is down", owner.Name, shard)}
	}

	var e wal.Encoder
	encodePublishReq(&e, topic, user, item)
	start := time.Now() //lint:allow wallclock forward latency measures real network round trips
	_, resp, err := c.Call(FramePublish, e.Bytes())
	elapsed := time.Since(start) //lint:allow wallclock forward latency measures real network round trips
	r.latMu.Lock()
	r.fwdLatency.Add(elapsed.Seconds())
	r.latMu.Unlock()
	if err != nil {
		// Mark the node down immediately: until the prober's next pass
		// confirms either way, further publishes fail fast instead of each
		// eating a dial timeout. A successful probe flips it back up.
		r.setUp(owner.Name, false)
		return publishOutcome{status: publishError, errText: err.Error()}
	}
	r.countForward(owner.Name)
	d := wal.NewDecoder(resp)
	out := decodePublishResp(d)
	if err := decodeErr(d, "publish response"); err != nil {
		return publishOutcome{status: publishError, errText: err.Error()}
	}
	return out
}

func (r *Router) handlePublish(w http.ResponseWriter, req *http.Request) {
	var body PublishRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, "malformed publish request: "+err.Error())
		return
	}
	kind, err := parseTopicKind(body.Topic.Kind)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	recipients := body.Recipients
	if len(recipients) == 0 {
		if body.Item.Recipient == 0 {
			httpError(w, http.StatusBadRequest, "publish needs recipients or item.recipient")
			return
		}
		recipients = []notif.UserID{body.Item.Recipient}
	}
	if body.Item.Topic == 0 {
		body.Item.Topic = kind
	}
	if body.Item.CreatedAt.IsZero() {
		body.Item.CreatedAt = time.Now().UTC() //lint:allow wallclock ingest timestamps are real arrival times
	}
	topic := pubsub.TopicID{Kind: kind, Entity: body.Topic.Entity}

	var resp PublishResponse
	backpressured, unavailable := false, false
	retryAfter := 0
	for _, rcpt := range recipients {
		out := r.forwardPublish(topic, rcpt, body.Item)
		switch out.status {
		case publishAccepted:
			resp.Accepted++
		case publishBackpressure:
			resp.Rejected++
			backpressured = true
			if out.retryAfter > retryAfter {
				retryAfter = out.retryAfter
			}
		default: // not-owner (stale map / node down / unassigned) or error
			resp.Rejected++
			unavailable = true
		}
	}
	switch {
	case unavailable:
		// A map update is usually seconds away; tell the client when to retry.
		w.Header().Set("Retry-After", strconv.Itoa(r.retrySeconds()))
		writeJSON(w, http.StatusServiceUnavailable, resp)
	case backpressured:
		if retryAfter < 1 {
			retryAfter = r.retrySeconds()
		}
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeJSON(w, http.StatusTooManyRequests, resp)
	default:
		writeJSON(w, http.StatusAccepted, resp)
	}
}

func (r *Router) handleDeliveries(w http.ResponseWriter, req *http.Request) {
	id, err := strconv.ParseInt(req.PathValue("id"), 10, 64)
	if err != nil || id <= 0 {
		httpError(w, http.StatusBadRequest, "bad user id")
		return
	}
	user := notif.UserID(id)
	m := r.cmap.Load()
	if m == nil {
		httpError(w, http.StatusServiceUnavailable, "router has no shard map yet")
		return
	}
	shard := r.ring.shardFor(user)
	owner := m.Owner(shard)
	if owner.Name == "" {
		w.Header().Set("Retry-After", strconv.Itoa(r.retrySeconds()))
		httpError(w, http.StatusServiceUnavailable, fmt.Sprintf("shard %d is unassigned (takeover retry in progress)", shard))
		return
	}
	c := r.client(owner.Name)
	if c == nil {
		httpError(w, http.StatusServiceUnavailable, "owning node unknown")
		return
	}
	var e wal.Encoder
	e.I64(int64(user))
	_, resp, err := c.Call(FrameDeliveries, e.Bytes())
	if err != nil {
		w.Header().Set("Retry-After", strconv.Itoa(r.retrySeconds()))
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	d := wal.NewDecoder(resp)
	owned, ds := decodeDeliveriesResp(d)
	if err := decodeErr(d, "deliveries response"); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !owned {
		// The node's map lags ours (or ours lags the truth). Retryable.
		w.Header().Set("Retry-After", strconv.Itoa(r.retrySeconds()))
		httpError(w, http.StatusServiceUnavailable, fmt.Sprintf("node %s no longer owns user %d's shard", owner.Name, user))
		return
	}
	if ds == nil {
		ds = []notif.Delivery{}
	}
	writeJSON(w, http.StatusOK, DeliveriesResponse{User: user, Deliveries: ds})
}

// RouterTickResponse is the router's POST /v1/tick body. Rounds is
// indexed by shard. Entries for nodes that could not tick hold the
// last-known rounds from the tick/health caches — not a zero that reads
// as "reset" — and Partial plus Errors say exactly which nodes were
// missed; a mid-fan-out failure no longer discards the ticks that
// already happened.
type RouterTickResponse struct {
	Rounds  []int    `json:"rounds"`
	Partial bool     `json:"partial,omitempty"`
	Errors  []string `json:"errors,omitempty"`
}

func (r *Router) handleTick(w http.ResponseWriter, req *http.Request) {
	m := r.cmap.Load()
	if m == nil {
		httpError(w, http.StatusServiceUnavailable, "router has no shard map yet")
		return
	}
	// Fan the tick out to every node in name order (deterministic),
	// splice the per-shard rounds into the standalone response shape, and
	// fill the gaps — dead nodes, unassigned shards, failed ticks — from
	// the last-known-round cache.
	resp := RouterTickResponse{Rounds: make([]int, r.shards)}
	for s := 0; s < r.shards; s++ {
		resp.Rounds[s] = int(r.lastRounds[s].Load())
	}
	for _, n := range m.Nodes {
		c := r.client(n.Name)
		if c == nil || !r.isUp(n.Name) {
			resp.Errors = append(resp.Errors, fmt.Sprintf("node %s down; its shards report last-known rounds", n.Name))
			continue
		}
		_, raw, err := c.Call(FrameTick, nil)
		if err != nil {
			r.setUp(n.Name, false)
			resp.Errors = append(resp.Errors, fmt.Sprintf("tick on node %s: %s", n.Name, err))
			continue
		}
		d := wal.NewDecoder(raw)
		cnt := d.Count(12, "tick rounds")
		for i := 0; i < cnt; i++ {
			shard := int(d.U32())
			round := int(d.I64())
			if shard >= 0 && shard < r.shards {
				resp.Rounds[shard] = round
				r.lastRounds[shard].Store(int64(round))
			}
		}
		if err := decodeErr(d, "tick response"); err != nil {
			resp.Errors = append(resp.Errors, err.Error())
		}
	}
	resp.Partial = len(resp.Errors) > 0
	status := http.StatusOK
	if resp.Partial {
		// Partial results are still results; the 503 tells closed-loop
		// drivers this tick did not cover the whole shard space.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	m := r.cmap.Load()
	resp := RouterHealthResponse{
		Status: "ok",
		Role:   "router",
		Shards: r.shards,
	}
	if m != nil {
		resp.MapVersion = m.Version
		if un := m.Unassigned(); len(un) > 0 {
			resp.UnassignedShards = un
		}
	}
	anyUp := false
	for _, name := range r.peerNames() {
		c := r.client(name)
		if c == nil {
			continue
		}
		nh := RouterNodeHealth{
			Name:        name,
			Addr:        c.Addr(),
			OwnedShards: []int{},
			Rounds:      []int{},
		}
		if r.isUp(name) {
			if _, raw, err := c.Call(FrameHealth, nil); err == nil {
				d := wal.NewDecoder(raw)
				h := decodeNodeHealth(d)
				if decodeErr(d, "health response") == nil {
					nh.Up = true
					nh.MapVersion = h.MapVersion
					if h.OwnedShards != nil {
						nh.OwnedShards = h.OwnedShards
					}
					if h.Rounds != nil {
						nh.Rounds = h.Rounds
					}
					nh.Users = h.Users
					nh.QueueDepth = h.QueueDepth
					nh.Errors = h.Errs
					for i, s := range h.OwnedShards {
						if s >= 0 && s < r.shards && i < len(h.Rounds) {
							r.lastRounds[s].Store(int64(h.Rounds[i]))
						}
					}
				}
			}
		}
		anyUp = anyUp || nh.Up
		resp.Nodes = append(resp.Nodes, nh)
	}
	status := http.StatusOK
	if !anyUp {
		resp.Status = "degraded"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// forwardLatencyBounds are the router's forward-latency histogram buckets,
// spanning loopback microseconds to cross-zone worst cases.
var forwardLatencyBounds = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	m := r.cmap.Load()

	// Aggregate node stats over the transport, merging reports and delay
	// histograms exactly as a standalone server merges its shards.
	var total metrics.Report
	var delay []metrics.Bucket
	if m != nil {
		for _, n := range m.Nodes {
			c := r.client(n.Name)
			if c == nil || !r.isUp(n.Name) {
				continue
			}
			_, raw, err := c.Call(FrameStats, nil)
			if err != nil {
				continue // a dead node's stats are simply absent this scrape
			}
			d := wal.NewDecoder(raw)
			st := decodeNodeStats(d)
			if decodeErr(d, "stats response") != nil {
				continue
			}
			total.Merge(st.Report)
			if merged, err := metrics.MergeBuckets(delay, st.DelayBuckets); err == nil {
				delay = merged
			}
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := metrics.WriteExposition(w, total, delay); err != nil {
		return
	}
	r.writeRouterGauges(w, m)
}

// writeRouterGauges appends the router-tier series: per-node forwarding
// counters, transport health, the map version, coordinator progress and
// the forward-latency histogram.
func (r *Router) writeRouterGauges(w http.ResponseWriter, m *cluster.Map) {
	printf := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	names := r.peerNames()
	printf("# HELP richnote_router_forwarded_publishes_total Publish requests forwarded to each node.\n# TYPE richnote_router_forwarded_publishes_total counter\n")
	for _, name := range names {
		r.peerMu.RLock()
		fwd := r.forwarded[name]
		r.peerMu.RUnlock()
		if fwd != nil {
			printf("richnote_router_forwarded_publishes_total{node=%q} %d\n", name, fwd.Load())
		}
	}
	printf("# HELP richnote_router_transport_errors_total Transport-level failures (dial, write, read, corruption) per node client.\n# TYPE richnote_router_transport_errors_total counter\n")
	for _, name := range names {
		if c := r.client(name); c != nil {
			printf("richnote_router_transport_errors_total{node=%q} %d\n", name, c.Errors())
		}
	}
	printf("# HELP richnote_router_reconnects_total Re-dials after an established connection was lost, per node client.\n# TYPE richnote_router_reconnects_total counter\n")
	for _, name := range names {
		if c := r.client(name); c != nil {
			printf("richnote_router_reconnects_total{node=%q} %d\n", name, c.Reconnects())
		}
	}
	printf("# HELP richnote_router_node_up Last probe verdict per node (1 up, 0 down).\n# TYPE richnote_router_node_up gauge\n")
	for _, name := range names {
		up := 0
		if r.isUp(name) {
			up = 1
		}
		printf("richnote_router_node_up{node=%q} %d\n", name, up)
	}
	printf("# HELP richnote_cluster_map_version Version of the shard assignment map this router serves from.\n# TYPE richnote_cluster_map_version gauge\n")
	version := uint64(0)
	if m != nil {
		version = m.Version
	}
	printf("richnote_cluster_map_version %d\n", version)
	printf("# HELP richnote_cluster_unassigned_shards Shards the map records as owned by nobody, awaiting adopt retry.\n# TYPE richnote_cluster_unassigned_shards gauge\n")
	unassigned := 0
	if m != nil {
		unassigned = len(m.Unassigned())
	}
	printf("richnote_cluster_unassigned_shards %d\n", unassigned)
	printf("# HELP richnote_router_handoffs_total Shard reassignments commanded by this coordinator (crash takeovers + planned moves).\n# TYPE richnote_router_handoffs_total counter\n")
	printf("richnote_router_handoffs_total %d\n", r.handoffs.Load())

	r.latMu.Lock()
	buckets := r.fwdLatency.CumulativeBuckets(forwardLatencyBounds)
	count := r.fwdLatency.Count()
	sum := r.fwdLatency.Mean() * float64(count)
	r.latMu.Unlock()
	printf("# HELP richnote_router_forward_latency_seconds Round-trip latency of publish forwards to shard-owner nodes.\n# TYPE richnote_router_forward_latency_seconds histogram\n")
	for _, b := range buckets {
		printf("richnote_router_forward_latency_seconds_bucket{le=%q} %d\n", strconv.FormatFloat(b.UpperBound, 'g', -1, 64), b.Count)
	}
	printf("richnote_router_forward_latency_seconds_bucket{le=\"+Inf\"} %d\n", count)
	printf("richnote_router_forward_latency_seconds_sum %g\n", sum)
	printf("richnote_router_forward_latency_seconds_count %d\n", count)
}
