// Package sched implements RichNote's round-based notification scheduler
// (Section IV, Algorithm 2) and the two industry baselines of Section V-C:
//
//   - RichNote: per round, Lyapunov-adjusted utilities feed the MCKP greedy
//     of Algorithm 1, choosing a presentation level per queued item under
//     the round's data budget; selections are delivered in descending
//     utility order.
//   - FIFO: delivers at a fixed presentation level in arrival order
//     (Spotify's real-time mode).
//   - UTIL: delivers at a fixed presentation level in descending utility
//     order (Spotify's batch mode).
//
// A Device owns one user's scheduling queue, data budget, battery, network
// process and (for RichNote) Lyapunov controller, and executes the
// per-round sequence: replenish budgets, step the network, plan, deliver,
// settle queues.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/richnote/richnote/internal/lyapunov"
	"github.com/richnote/richnote/internal/mckp"
	"github.com/richnote/richnote/internal/notif"
)

// bytesPerMB converts queue backlogs to the megabyte scale used inside the
// Lyapunov score, keeping the Q·s term commensurate with V·U at the
// paper's V = 1000 (see EXPERIMENTS.md for the unit discussion).
const bytesPerMB = 1 << 20

// Queued is one scheduling-queue entry: the enriched item plus the ground
// truth the metrics layer scores against.
type Queued struct {
	Rich notif.RichItem
	// Clicked and ClickRound carry the trace ground truth.
	Clicked    bool
	ClickRound int
	// TrueUc is the ground-truth content utility (latent click
	// probability) when the workload knows it; used only by metrics, never
	// by strategies.
	TrueUc float64
}

// Selection chooses a presentation level for one queue entry.
type Selection struct {
	// Index refers into the queue slice passed to Plan.
	Index int
	// Level is the chosen presentation level (>= 1).
	Level int
}

// PlanContext is the per-round state a strategy plans against.
type PlanContext struct {
	// Round is the current round index.
	Round int
	// BudgetBytes is the byte budget available to this round's plan: the
	// accumulated data budget on cellular, or the link capacity on WiFi.
	BudgetBytes float64
	// Controller is the user's Lyapunov controller; nil for baselines.
	Controller *lyapunov.Controller
	// EnergyJ estimates the energy to download size bytes on the current
	// network.
	EnergyJ func(size int64) float64
}

// Strategy plans which queued items to deliver this round, at which levels,
// in delivery order.
type Strategy interface {
	Name() string
	Plan(queue []Queued, ctx *PlanContext) []Selection
}

// RichNote is the paper's scheduler.
type RichNote struct {
	// Options tunes the underlying MCKP greedy; the zero value follows the
	// paper's variant with misfit skipping.
	Options mckp.Options
	// UseDominance switches to the Sinha-Zoltners LP-dominance greedy the
	// paper cites as the original algorithm: dominated presentation levels
	// are pruned per item, letting upgrades skip levels. With concave
	// ladders the two variants coincide; under Lyapunov energy pressure
	// they can differ.
	UseDominance bool
}

var _ Strategy = (*RichNote)(nil)

// Name implements Strategy.
func (*RichNote) Name() string { return "richnote" }

// Plan implements Strategy: it computes adjusted utilities
// Ua(i, j) = Q·s(i) + (P−κ)·ρ(i, j) + V·U(i, j), solves the MCKP under the
// round's byte budget and returns the selections sorted by descending
// combined utility (Algorithm 2, step 1).
func (s *RichNote) Plan(queue []Queued, ctx *PlanContext) []Selection {
	if ctx.Controller == nil || len(queue) == 0 || ctx.BudgetBytes <= 0 {
		return nil
	}
	groups := make([]mckp.Group, len(queue))
	for qi := range queue {
		rich := &queue[qi].Rich
		totalMB := float64(rich.TotalSize()) / bytesPerMB
		choices := make([]mckp.Choice, rich.Levels())
		for j := 1; j <= rich.Levels(); j++ {
			p := rich.At(j)
			var energy float64
			if ctx.EnergyJ != nil {
				energy = ctx.EnergyJ(p.Size)
			}
			choices[j-1] = mckp.Choice{
				Value:  ctx.Controller.Adjusted(totalMB, energy, rich.Utility(j)),
				Weight: float64(p.Size),
			}
		}
		groups[qi] = mckp.Group{Choices: choices}
	}
	var res mckp.Result
	if s.UseDominance {
		res = mckp.SelectGreedyDominance(groups, ctx.BudgetBytes)
	} else {
		res = mckp.SelectGreedy(groups, ctx.BudgetBytes, s.Options)
	}
	sels := make([]Selection, 0, len(res.Assignment))
	for qi, level := range res.Assignment {
		if level > 0 {
			sels = append(sels, Selection{Index: qi, Level: level})
		}
	}
	sort.Slice(sels, func(a, b int) bool {
		ua := queue[sels[a].Index].Rich.Utility(sels[a].Level)
		ub := queue[sels[b].Index].Rich.Utility(sels[b].Level)
		return ua > ub
	})
	return sels
}

// ErrFixedLevel is returned by baseline constructors for bad levels.
var ErrFixedLevel = errors.New("sched: fixed level must be >= 1")

// FIFO is the arrival-order baseline with a fixed presentation level.
type FIFO struct {
	level int
}

var _ Strategy = (*FIFO)(nil)

// NewFIFO returns a FIFO baseline delivering at the given level.
func NewFIFO(level int) (*FIFO, error) {
	if level < 1 {
		return nil, fmt.Errorf("%w: %d", ErrFixedLevel, level)
	}
	return &FIFO{level: level}, nil
}

// Name implements Strategy.
func (f *FIFO) Name() string { return fmt.Sprintf("fifo-L%d", f.level) }

// Plan implements Strategy: items in arrival order, fixed level, as many
// as fit the budget. Items whose ladder is shorter than the fixed level
// are delivered at their richest level (the paper's baselines always have
// the full six-level ladder).
func (f *FIFO) Plan(queue []Queued, ctx *PlanContext) []Selection {
	return planFixed(queue, ctx, f.level, false)
}

// Util is the utility-descending baseline with a fixed presentation level.
type Util struct {
	level int
}

var _ Strategy = (*Util)(nil)

// NewUtil returns a UTIL baseline delivering at the given level.
func NewUtil(level int) (*Util, error) {
	if level < 1 {
		return nil, fmt.Errorf("%w: %d", ErrFixedLevel, level)
	}
	return &Util{level: level}, nil
}

// Name implements Strategy.
func (u *Util) Name() string { return fmt.Sprintf("util-L%d", u.level) }

// Plan implements Strategy: highest combined utility first, fixed level.
func (u *Util) Plan(queue []Queued, ctx *PlanContext) []Selection {
	return planFixed(queue, ctx, u.level, true)
}

// planFixed shares the baseline logic: walk the queue (optionally utility-
// sorted), take items at the fixed level while the budget lasts.
func planFixed(queue []Queued, ctx *PlanContext, level int, byUtility bool) []Selection {
	if len(queue) == 0 || ctx.BudgetBytes <= 0 {
		return nil
	}
	order := make([]int, len(queue))
	for i := range order {
		order[i] = i
	}
	if byUtility {
		sort.SliceStable(order, func(a, b int) bool {
			la := clampLevel(&queue[order[a]].Rich, level)
			lb := clampLevel(&queue[order[b]].Rich, level)
			return queue[order[a]].Rich.Utility(la) > queue[order[b]].Rich.Utility(lb)
		})
	}
	remaining := ctx.BudgetBytes
	var sels []Selection
	for _, qi := range order {
		lvl := clampLevel(&queue[qi].Rich, level)
		size := float64(queue[qi].Rich.At(lvl).Size)
		if size > remaining {
			// Fixed-presentation baselines cannot downgrade; they simply
			// cannot afford this item. FIFO stops (head-of-line blocking);
			// UTIL skips to cheaper items of equal level.
			if !byUtility {
				break
			}
			continue
		}
		remaining -= size
		sels = append(sels, Selection{Index: qi, Level: lvl})
	}
	return sels
}

// clampLevel bounds the fixed level by the item's ladder height.
func clampLevel(r *notif.RichItem, level int) int {
	return int(math.Min(float64(level), float64(r.Levels())))
}
