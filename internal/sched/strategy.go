// Package sched implements RichNote's round-based notification scheduler
// (Section IV, Algorithm 2) and the two industry baselines of Section V-C:
//
//   - RichNote: per round, Lyapunov-adjusted utilities feed the MCKP greedy
//     of Algorithm 1, choosing a presentation level per queued item under
//     the round's data budget; selections are delivered in descending
//     utility order.
//   - FIFO: delivers at a fixed presentation level in arrival order
//     (Spotify's real-time mode).
//   - UTIL: delivers at a fixed presentation level in descending utility
//     order (Spotify's batch mode).
//
// A Device owns one user's scheduling queue, data budget, battery, network
// process and (for RichNote) Lyapunov controller, and executes the
// per-round sequence: replenish budgets, step the network, plan, deliver,
// settle queues.
package sched

import (
	"errors"
	"fmt"
	"sort"

	"github.com/richnote/richnote/internal/lyapunov"
	"github.com/richnote/richnote/internal/mckp"
	"github.com/richnote/richnote/internal/notif"
)

// bytesPerMB converts queue backlogs to the megabyte scale used inside the
// Lyapunov score, keeping the Q·s term commensurate with V·U at the
// paper's V = 1000 (see EXPERIMENTS.md for the unit discussion).
const bytesPerMB = 1 << 20

// Queued is one scheduling-queue entry: the enriched item plus the ground
// truth the metrics layer scores against.
type Queued struct {
	Rich notif.RichItem
	// Clicked and ClickRound carry the trace ground truth.
	Clicked    bool
	ClickRound int
	// TrueUc is the ground-truth content utility (latent click
	// probability) when the workload knows it; used only by metrics, never
	// by strategies.
	TrueUc float64

	// Attempts counts failed transfer attempts for this entry; the device
	// drops the entry once Attempts reaches its MaxAttempts.
	Attempts int
	// LevelCap, when positive, caps the presentation level strategies may
	// plan for this entry — the retry degradation ladder lowers it one
	// level per failed attempt. Zero leaves the full ladder available.
	LevelCap int
}

// MaxLevel returns the highest presentation level a strategy may plan for
// this entry: the ladder height, lowered to LevelCap when a degradation
// cap is active. Never below 1 for a valid rich item.
func (q *Queued) MaxLevel() int {
	n := q.Rich.Levels()
	if q.LevelCap > 0 && q.LevelCap < n {
		return q.LevelCap
	}
	return n
}

// Selection chooses a presentation level for one queue entry.
type Selection struct {
	// Index refers into the queue slice passed to Plan.
	Index int
	// Level is the chosen presentation level (>= 1).
	Level int
}

// PlanContext is the per-round state a strategy plans against.
type PlanContext struct {
	// Round is the current round index.
	Round int
	// BudgetBytes is the byte budget available to this round's plan: the
	// accumulated data budget on cellular, or the link capacity on WiFi.
	BudgetBytes float64
	// Controller is the user's Lyapunov controller; nil for baselines.
	Controller *lyapunov.Controller
	// EnergyJ estimates the energy to download size bytes on the current
	// network.
	EnergyJ func(size int64) float64
	// Scratch, when non-nil, provides reusable plan buffers owned by the
	// calling device; strategies then allocate nothing in steady state.
	// Selections returned against a scratch alias it and are valid until
	// the next Plan call with the same scratch. A nil Scratch keeps the
	// historical per-call allocation behaviour.
	Scratch *PlanScratch
}

// Strategy plans which queued items to deliver this round, at which levels,
// in delivery order.
type Strategy interface {
	Name() string
	Plan(queue []Queued, ctx *PlanContext) []Selection
}

// RichNote is the paper's scheduler.
type RichNote struct {
	// Options tunes the underlying MCKP greedy; the zero value follows the
	// paper's variant with misfit skipping.
	Options mckp.Options
	// UseDominance switches to the Sinha-Zoltners LP-dominance greedy the
	// paper cites as the original algorithm: dominated presentation levels
	// are pruned per item, letting upgrades skip levels. With concave
	// ladders the two variants coincide; under Lyapunov energy pressure
	// they can differ.
	UseDominance bool
}

var _ Strategy = (*RichNote)(nil)

// Name implements Strategy.
func (*RichNote) Name() string { return "richnote" }

// Plan implements Strategy: it computes adjusted utilities
// Ua(i, j) = Q·s(i) + (P−κ)·ρ(i, j) + V·U(i, j), solves the MCKP under the
// round's byte budget and returns the selections sorted by descending
// combined utility (Algorithm 2, step 1).
//
// richnote:allocfree
func (s *RichNote) Plan(queue []Queued, ctx *PlanContext) []Selection {
	if ctx.Controller == nil || len(queue) == 0 || ctx.BudgetBytes <= 0 {
		return nil
	}
	scratch := ctx.Scratch
	if scratch == nil {
		scratch = &PlanScratch{}
	}

	// One MCKP group per queue entry, all groups' choices laid out in one
	// shared backing array (capped subslices, so a later grow cannot
	// scribble over an earlier group).
	total := 0
	for qi := range queue {
		total += queue[qi].MaxLevel()
	}
	if cap(scratch.choices) < total {
		scratch.choices = make([]mckp.Choice, 0, total)
	}
	if cap(scratch.groups) < len(queue) {
		scratch.groups = make([]mckp.Group, 0, len(queue))
	}
	choices := scratch.choices[:0]
	groups := scratch.groups[:0]
	for qi := range queue {
		rich := &queue[qi].Rich
		totalMB := float64(rich.TotalSize()) / bytesPerMB
		base := len(choices)
		// MaxLevel honors the retry degradation cap: with no cap it is the
		// full ladder, keeping fault-free plans identical.
		for j := 1; j <= queue[qi].MaxLevel(); j++ {
			p := rich.At(j)
			var energy float64
			if ctx.EnergyJ != nil {
				energy = ctx.EnergyJ(p.Size)
			}
			choices = append(choices, mckp.Choice{
				Value:  ctx.Controller.Adjusted(totalMB, energy, rich.Utility(j)),
				Weight: float64(p.Size),
			})
		}
		groups = append(groups, mckp.Group{Choices: choices[base:len(choices):len(choices)]})
	}
	scratch.choices = choices
	scratch.groups = groups

	var res mckp.Result
	if s.UseDominance {
		res = mckp.SelectGreedyDominance(groups, ctx.BudgetBytes)
	} else {
		res = scratch.solver.Solve(groups, ctx.BudgetBytes, s.Options)
	}

	// Deliveries go out in descending combined utility (Algorithm 2,
	// step 1). Utilities are precomputed once and the sort is stable, so
	// equal-utility ties keep queue (arrival) order deterministically.
	sels := scratch.sorter.sels[:0]
	utils := scratch.sorter.utils[:0]
	for qi, level := range res.Assignment {
		if level > 0 {
			sels = append(sels, Selection{Index: qi, Level: level})
			utils = append(utils, queue[qi].Rich.Utility(level))
		}
	}
	scratch.sorter.sels, scratch.sorter.utils = sels, utils
	sort.Stable(&scratch.sorter)
	return scratch.sorter.sels
}

// ErrFixedLevel is returned by baseline constructors for bad levels.
var ErrFixedLevel = errors.New("sched: fixed level must be >= 1")

// FIFO is the arrival-order baseline with a fixed presentation level.
type FIFO struct {
	level int
}

var _ Strategy = (*FIFO)(nil)

// NewFIFO returns a FIFO baseline delivering at the given level.
func NewFIFO(level int) (*FIFO, error) {
	if level < 1 {
		return nil, fmt.Errorf("%w: %d", ErrFixedLevel, level)
	}
	return &FIFO{level: level}, nil
}

// Name implements Strategy.
func (f *FIFO) Name() string { return fmt.Sprintf("fifo-L%d", f.level) }

// Plan implements Strategy: items in arrival order, fixed level, as many
// as fit the budget. Items whose ladder is shorter than the fixed level
// are delivered at their richest level (the paper's baselines always have
// the full six-level ladder).
func (f *FIFO) Plan(queue []Queued, ctx *PlanContext) []Selection {
	return planFixed(queue, ctx, f.level, false)
}

// Util is the utility-descending baseline with a fixed presentation level.
type Util struct {
	level int
}

var _ Strategy = (*Util)(nil)

// NewUtil returns a UTIL baseline delivering at the given level.
func NewUtil(level int) (*Util, error) {
	if level < 1 {
		return nil, fmt.Errorf("%w: %d", ErrFixedLevel, level)
	}
	return &Util{level: level}, nil
}

// Name implements Strategy.
func (u *Util) Name() string { return fmt.Sprintf("util-L%d", u.level) }

// Plan implements Strategy: highest combined utility first, fixed level.
func (u *Util) Plan(queue []Queued, ctx *PlanContext) []Selection {
	return planFixed(queue, ctx, u.level, true)
}

// planFixed shares the baseline logic: walk the queue (optionally utility-
// sorted), take items at the fixed level while the budget lasts. The
// queue permutation, clamped levels and utilities come from the plan
// scratch; levels and utilities are computed once up front instead of
// inside the sort comparator.
//
// richnote:allocfree
func planFixed(queue []Queued, ctx *PlanContext, level int, byUtility bool) []Selection {
	if len(queue) == 0 || ctx.BudgetBytes <= 0 {
		return nil
	}
	scratch := ctx.Scratch
	if scratch == nil {
		scratch = &PlanScratch{}
	}
	order := scratch.order[:0]
	levels := scratch.levels[:0]
	for qi := range queue {
		order = append(order, qi)
		lvl := clampLevel(&queue[qi].Rich, level)
		if c := queue[qi].MaxLevel(); lvl > c {
			lvl = c // retry degradation cap
		}
		levels = append(levels, lvl)
	}
	scratch.order, scratch.levels = order, levels
	if byUtility {
		utils := scratch.orderUtils[:0]
		for qi := range queue {
			utils = append(utils, queue[qi].Rich.Utility(levels[qi]))
		}
		scratch.orderUtils = utils
		scratch.orderSort = orderSorter{order: order, utils: utils}
		sort.Stable(&scratch.orderSort)
	}
	remaining := ctx.BudgetBytes
	sels := scratch.sorter.sels[:0]
	for _, qi := range order {
		lvl := levels[qi]
		size := float64(queue[qi].Rich.At(lvl).Size)
		if size > remaining {
			// Fixed-presentation baselines cannot downgrade; they simply
			// cannot afford this item. FIFO stops (head-of-line blocking);
			// UTIL skips to cheaper items of equal level.
			if !byUtility {
				break
			}
			continue
		}
		remaining -= size
		sels = append(sels, Selection{Index: qi, Level: lvl})
	}
	scratch.sorter.sels = sels
	if len(sels) == 0 {
		return nil
	}
	return sels
}

// clampLevel bounds the fixed level by the item's ladder height.
func clampLevel(r *notif.RichItem, level int) int {
	if n := r.Levels(); level > n {
		return n
	}
	return level
}
