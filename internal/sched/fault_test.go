package sched

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/richnote/richnote/internal/energy"
	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/sim"
)

// faultyFixture builds a RichNote device whose every dependency is seeded
// from base, with the given fault model attached. Identical bases produce
// identical devices, which the equivalence tests below rely on.
func faultyFixture(t *testing.T, base int64, matrix network.Matrix, start network.State,
	faults *network.FaultModel, opts ...func(*DeviceConfig)) *deviceFixture {
	t.Helper()
	net, err := network.NewModel(matrix, start, sim.NewRNG(base, sim.StreamNetwork))
	if err != nil {
		t.Fatalf("network.NewModel: %v", err)
	}
	bat, err := energy.NewBattery(energy.BatteryConfig{}, sim.NewRNG(base, sim.StreamEnergy))
	if err != nil {
		t.Fatalf("NewBattery: %v", err)
	}
	col := metrics.NewCollector()
	cfg := DeviceConfig{
		User:              7,
		Strategy:          &RichNote{},
		Controller:        newController(t),
		WeeklyBudgetBytes: 20 << 20,
		Epoch:             time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC),
		Network:           net,
		Capacity:          network.DefaultCapacity(),
		Battery:           bat,
		Transfer:          energy.DefaultTransferModel(),
		Collector:         col,
		Faults:            faults,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return &deviceFixture{device: d, collector: col}
}

// runEquivalence drives a fixture through a fixed arrival schedule and
// returns every round result and delivery, for bitwise comparison.
func runEquivalence(t *testing.T, fx *deviceFixture) ([]RoundResult, []notif.Delivery) {
	t.Helper()
	var deliveries []notif.Delivery
	fx.device.cfg.OnDelivery = func(d notif.Delivery) { deliveries = append(deliveries, d) }
	var results []RoundResult
	for round := 0; round < 80; round++ {
		if round%7 == 0 {
			batch := []Queued{
				{Rich: makeRich(t, notif.ItemID(round*2+1), 0.9), Clicked: true, ClickRound: round + 3},
				{Rich: makeRich(t, notif.ItemID(round*2+2), 0.3)},
			}
			if err := fx.device.Enqueue(batch); err != nil {
				t.Fatalf("Enqueue: %v", err)
			}
		}
		res, err := fx.device.RunRound(round)
		if err != nil {
			t.Fatalf("RunRound: %v", err)
		}
		results = append(results, res)
	}
	return results, deliveries
}

// TestZeroFaultEquivalence pins the tentpole's compatibility contract: a
// device with no fault model, a device with an all-zero fault config, and a
// device whose faults only cover a state it never visits must produce
// bit-identical round results, deliveries, budgets and battery levels.
func TestZeroFaultEquivalence(t *testing.T) {
	wifiOnly := network.Matrix{{0, 0, 1}, {0, 0, 1}, {0, 0, 1}}
	zeroModel, err := network.NewFaultModelSeeded(network.FaultConfig{}, 99)
	if err != nil {
		t.Fatalf("NewFaultModelSeeded: %v", err)
	}
	cellOnlyFaults, err := network.NewFaultModelSeeded(network.FaultConfig{CellLoss: 0.9, CellDisconnect: 0.1}, 99)
	if err != nil {
		t.Fatalf("NewFaultModelSeeded: %v", err)
	}
	cases := []struct {
		name   string
		matrix network.Matrix
		start  network.State
		faults *network.FaultModel
	}{
		{"zero-config model on mixed network", network.PaperMatrix(), network.StateCell, zeroModel},
		{"cell faults on wifi-only network", wifiOnly, network.StateWifi, cellOnlyFaults},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := faultyFixture(t, 11, tc.matrix, tc.start, nil)
			alt := faultyFixture(t, 11, tc.matrix, tc.start, tc.faults)
			refRes, refDel := runEquivalence(t, ref)
			altRes, altDel := runEquivalence(t, alt)
			if !reflect.DeepEqual(refRes, altRes) {
				t.Errorf("round results diverged:\n nil faults: %+v\nwith faults: %+v", refRes, altRes)
			}
			if !reflect.DeepEqual(refDel, altDel) {
				t.Errorf("deliveries diverged:\n nil faults: %+v\nwith faults: %+v", refDel, altDel)
			}
			if a, b := ref.device.Budget(), alt.device.Budget(); a != b {
				t.Errorf("budgets diverged: %v != %v", a, b)
			}
			if a, b := ref.device.cfg.Battery.Level(), alt.device.cfg.Battery.Level(); a != b {
				t.Errorf("battery levels diverged: %v != %v", a, b)
			}
			if deb, ref := alt.device.BudgetLedger(); ref != 0 {
				t.Errorf("fault-free run refunded %f of %f debited", ref, deb)
			}
		})
	}
}

// TestEnqueueAllOrNothing is the regression test for the partial-enqueue
// bug: a batch with an invalid item in the middle must leave no trace — no
// queued prefix, no collector arrivals, no controller backlog.
func TestEnqueueAllOrNothing(t *testing.T) {
	fx := newFixture(t, &RichNote{})
	d := fx.device
	batch := []Queued{
		{Rich: makeRich(t, 1, 0.9)},
		{Rich: notif.RichItem{Item: notif.Item{ID: 2}}}, // no presentations: invalid
		{Rich: makeRich(t, 3, 0.5)},
	}
	if err := d.Enqueue(batch); err == nil {
		t.Fatal("batch with an invalid item accepted")
	}
	if d.QueueLen() != 0 {
		t.Errorf("queue holds %d items after failed enqueue, want 0", d.QueueLen())
	}
	if rep := fx.collector.Aggregate(); rep.Arrived != 0 {
		t.Errorf("collector recorded %d arrivals after failed enqueue, want 0", rep.Arrived)
	}
	if q := d.cfg.Controller.Q(); q != 0 {
		t.Errorf("controller backlog %f after failed enqueue, want 0", q)
	}
	// The same batch without the poison pill must still work.
	if err := d.Enqueue([]Queued{batch[0], batch[2]}); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	if d.QueueLen() != 2 {
		t.Fatalf("queue holds %d items, want 2", d.QueueLen())
	}
}

// planList returns a canned selection list regardless of queue or budget —
// for driving deliverRound into specific corners.
type planList struct{ sels []Selection }

func (p planList) Name() string                                      { return "plan-list" }
func (p planList) Plan(queue []Queued, ctx *PlanContext) []Selection { return p.sels }

// TestBatteryDepletionBreakSkipsAffordableRemainder pins a pre-existing
// deliverRound behavior: when a selection's energy need exceeds the battery,
// the round breaks — it does not scan ahead for cheaper selections that the
// remaining charge could still afford. Those retry next round.
func TestBatteryDepletionBreakSkipsAffordableRemainder(t *testing.T) {
	// 15 J available: enough for the batch overhead (9.75 J) plus a level-1
	// transfer (~0.005 J), far short of overhead plus level 6 (~20 J).
	bat, err := energy.NewBattery(energy.BatteryConfig{
		CapacityJ:         100,
		InitialLevel:      0.15,
		RechargeStartHour: 3, RechargeEndHour: 4,
	}, sim.NewRNG(3, sim.StreamEnergy))
	if err != nil {
		t.Fatalf("NewBattery: %v", err)
	}
	strategy := planList{sels: []Selection{{Index: 0, Level: 6}, {Index: 1, Level: 1}}}
	fx := newFixture(t, strategy, func(c *DeviceConfig) {
		c.Battery = bat
		c.WeeklyBudgetBytes = 1 << 30 // budget never the binding constraint
		c.Epoch = time.Date(2015, 1, 1, 8, 0, 0, 0, time.UTC)
	})
	d := fx.device
	if err := d.Enqueue(makeQueue(t, 0.9, 0.8)); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	res, err := d.RunRound(0)
	if err != nil {
		t.Fatalf("RunRound: %v", err)
	}
	if res.Planned != 2 {
		t.Fatalf("planned %d selections, want 2", res.Planned)
	}
	if res.Delivered != 0 {
		t.Fatalf("delivered %d, want 0: the depletion break must stop the round", res.Delivered)
	}
	if res.EnergyJ != 0 {
		t.Errorf("round energy %f, want 0 (radio never powered)", res.EnergyJ)
	}
	if d.QueueLen() != 2 {
		t.Errorf("queue %d, want 2: both items retry next round", d.QueueLen())
	}
}

// TestMaxDeliveriesWithDropUndelivered pins the interaction of the two
// queue disciplines: the per-round cap stops after one delivery, and the
// digest discipline then drops the undelivered remainder instead of
// retrying it.
func TestMaxDeliveriesWithDropUndelivered(t *testing.T) {
	u, err := NewUtil(1)
	if err != nil {
		t.Fatalf("NewUtil: %v", err)
	}
	fx := newFixture(t, u, func(c *DeviceConfig) {
		c.MaxDeliveriesPerRound = 1
		c.DropUndelivered = true
		c.WeeklyBudgetBytes = 1 << 30
	})
	d := fx.device
	if err := d.Enqueue(makeQueue(t, 0.9, 0.8, 0.7)); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	res, err := d.RunRound(0)
	if err != nil {
		t.Fatalf("RunRound: %v", err)
	}
	if res.Delivered != 1 {
		t.Fatalf("delivered %d, want exactly 1 (MaxDeliveriesPerRound)", res.Delivered)
	}
	if res.QueueAfter != 0 || d.QueueLen() != 0 {
		t.Fatalf("queue %d after digest round, want 0 (DropUndelivered)", d.QueueLen())
	}
}

// TestDegradationLadderAndBoundedDrop walks one item down the full retry
// ladder under a 100% cellular loss rate: each failed attempt lowers the
// level cap by one, the data plan is refunded in full every time, and after
// MaxAttempts the item leaves the queue as dropped.
func TestDegradationLadderAndBoundedDrop(t *testing.T) {
	faults, err := network.NewFaultModelSeeded(network.FaultConfig{CellLoss: 1}, 5)
	if err != nil {
		t.Fatalf("NewFaultModelSeeded: %v", err)
	}
	u, err := NewUtil(3)
	if err != nil {
		t.Fatalf("NewUtil: %v", err)
	}
	fx := faultyFixture(t, 21, network.AlwaysCellMatrix(), network.StateCell, faults,
		func(c *DeviceConfig) {
			c.Strategy = u
			c.Controller = nil
			c.WeeklyBudgetBytes = 1 << 30
			c.MaxAttempts = 3
			c.DegradeOnFailure = true
		})
	d := fx.device
	if err := d.Enqueue(makeQueue(t, 0.9)); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	// Each failed attempt caps the ladder one level below the level just
	// tried: 3 → 2 → 1, then the third failure exhausts MaxAttempts.
	wantCapAfter := []int{2, 1} // LevelCap after rounds 0 and 1
	for round := 0; round < 3; round++ {
		res, err := d.RunRound(round)
		if err != nil {
			t.Fatalf("RunRound %d: %v", round, err)
		}
		if res.Failed != 1 || res.Delivered != 0 {
			t.Fatalf("round %d: failed %d delivered %d, want 1/0", round, res.Failed, res.Delivered)
		}
		if round < len(wantCapAfter) {
			if res.Dropped != 0 {
				t.Fatalf("round %d: dropped %d before MaxAttempts", round, res.Dropped)
			}
			if got := d.queue[0].MaxLevel(); got != wantCapAfter[round] {
				t.Fatalf("after round %d: plannable level %d, want %d", round, got, wantCapAfter[round])
			}
		} else if res.Dropped != 1 {
			t.Fatalf("round %d: dropped %d, want 1 (MaxAttempts exhausted)", round, res.Dropped)
		}
	}
	if d.QueueLen() != 0 {
		t.Fatalf("queue %d after MaxAttempts exhausted, want 0", d.QueueLen())
	}
	debited, refunded := d.BudgetLedger()
	if debited == 0 || debited != refunded {
		t.Errorf("ledger debited %f refunded %f: every failed attempt must refund in full", debited, refunded)
	}
	rep := fx.collector.Aggregate()
	if rep.TransferFailures != 3 || rep.Dropped != 1 || rep.Delivered != 0 {
		t.Errorf("report failures %d dropped %d delivered %d, want 3/1/0",
			rep.TransferFailures, rep.Dropped, rep.Delivered)
	}
}

// TestFaultPropertyInvariants is the tentpole's property test: thousands of
// randomized failure sequences (random fault probabilities, retry caps,
// degradation settings, arrival patterns and network walks), after every
// round of which the money-and-energy invariants must hold:
//
//   - the data-plan balance never goes negative and refunds never exceed
//     debits (no double-spend, no refund fabrication);
//   - the battery level stays within [0, 1];
//   - every arrival is accounted for: delivered, dropped or still queued;
//   - the Lyapunov backlog Q(t) tracks the queue's byte content and the
//     virtual energy queue P(t) never goes negative.
func TestFaultPropertyInvariants(t *testing.T) {
	trials := 10000
	if testing.Short() {
		trials = 500
	}
	matrices := []network.Matrix{
		network.PaperMatrix(),
		network.AlwaysCellMatrix(),
		network.CellOnlyMatrix(),
	}
	// Rich ladders are expensive to generate; build a palette once and vary
	// the content utility per arrival.
	palette := make([]notif.RichItem, 6)
	for i := range palette {
		palette[i] = makeRich(t, notif.ItemID(i+1), 0.5)
	}

	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		cfg := network.FaultConfig{
			CellLoss:       rng.Float64() * 0.5,
			WifiLoss:       rng.Float64() * 0.3,
			CellDisconnect: rng.Float64() * 0.4,
			WifiDisconnect: rng.Float64() * 0.3,
		}
		faults, err := network.NewFaultModelSeeded(cfg, int64(trial)+1)
		if err != nil {
			t.Fatalf("trial %d: NewFaultModelSeeded: %v", trial, err)
		}
		maxAttempts := rng.Intn(5) // 0 = retry forever
		degrade := rng.Intn(2) == 0
		fx := faultyFixture(t, int64(trial), matrices[rng.Intn(len(matrices))], network.StateCell, faults,
			func(c *DeviceConfig) {
				c.MaxAttempts = maxAttempts
				c.DegradeOnFailure = degrade
			})
		d := fx.device

		arrived, delivered, dropped := 0, 0, 0
		for round := 0; round < 30; round++ {
			if rng.Float64() < 0.5 {
				n := 1 + rng.Intn(3)
				batch := make([]Queued, n)
				for i := range batch {
					rich := palette[rng.Intn(len(palette))]
					rich.Item.ID = notif.ItemID(arrived + i + 1000*trial)
					rich.ContentUtility = rng.Float64()
					batch[i] = Queued{Rich: rich, Clicked: rng.Intn(2) == 0, ClickRound: round + rng.Intn(5)}
				}
				if err := d.Enqueue(batch); err != nil {
					t.Fatalf("trial %d round %d: Enqueue: %v", trial, round, err)
				}
				arrived += n
			}
			res, err := d.RunRound(round)
			if err != nil {
				t.Fatalf("trial %d round %d: RunRound: %v", trial, round, err)
			}
			delivered += res.Delivered
			dropped += res.Dropped

			if bal := d.Budget(); bal < 0 {
				t.Fatalf("trial %d round %d: data budget negative: %f", trial, round, bal)
			}
			debited, refunded := d.BudgetLedger()
			if refunded > debited {
				t.Fatalf("trial %d round %d: refunded %f > debited %f", trial, round, refunded, debited)
			}
			if lvl := d.cfg.Battery.Level(); lvl < 0 || lvl > 1 {
				t.Fatalf("trial %d round %d: battery level %f outside [0,1]", trial, round, lvl)
			}
			if arrived != delivered+dropped+d.QueueLen() {
				t.Fatalf("trial %d round %d: conservation violated: arrived %d != delivered %d + dropped %d + queued %d",
					trial, round, arrived, delivered, dropped, d.QueueLen())
			}
			var queuedMB float64
			for qi := range d.queue {
				queuedMB += float64(d.queue[qi].Rich.TotalSize()) / bytesPerMB
			}
			if q := d.cfg.Controller.Q(); math.Abs(q-queuedMB) > 1e-6 {
				t.Fatalf("trial %d round %d: controller Q %f != queued backlog %f MB", trial, round, q, queuedMB)
			}
			if p := d.cfg.Controller.P(); p < 0 {
				t.Fatalf("trial %d round %d: virtual energy queue negative: %f", trial, round, p)
			}
		}
	}
}
