package sched

import (
	"math"
	"testing"

	"github.com/richnote/richnote/internal/lyapunov"
	"github.com/richnote/richnote/internal/media"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/survey"
)

// makeRich builds a six-level audio rich item with the paper's ladder.
func makeRich(t testing.TB, id notif.ItemID, uc float64) notif.RichItem {
	t.Helper()
	gen, err := media.NewAudioGenerator(media.AudioConfig{Utility: survey.Equation8})
	if err != nil {
		t.Fatalf("NewAudioGenerator: %v", err)
	}
	item := notif.Item{ID: id, Kind: notif.KindAudio}
	ps, err := gen.Generate(item)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return notif.RichItem{Item: item, ContentUtility: uc, Presentations: ps}
}

func makeQueue(t testing.TB, utilities ...float64) []Queued {
	t.Helper()
	q := make([]Queued, len(utilities))
	for i, u := range utilities {
		q[i] = Queued{Rich: makeRich(t, notif.ItemID(i+1), u)}
	}
	return q
}

func newController(t testing.TB) *lyapunov.Controller {
	t.Helper()
	c, err := lyapunov.New(lyapunov.Config{V: 1000, Kappa: 30})
	if err != nil {
		t.Fatalf("lyapunov.New: %v", err)
	}
	return c
}

func cellEnergy(size int64) float64 { return float64(size) / 1000 * 0.025 }

func TestRichNotePlanRequiresController(t *testing.T) {
	s := &RichNote{}
	q := makeQueue(t, 0.5)
	if got := s.Plan(q, &PlanContext{BudgetBytes: 1e9}); got != nil {
		t.Fatalf("plan without controller returned %v", got)
	}
}

func TestRichNoteAdaptsLevelToBudget(t *testing.T) {
	s := &RichNote{}
	// Single item: tiny budget forces metadata-only, huge budget the
	// richest level. The controller's energy queue is held at its target κ
	// so the data budget is the only binding constraint.
	for _, tc := range []struct {
		budget    float64
		wantLevel int
	}{
		{300, 1},        // only metadata fits
		{150_000, 2},    // meta+5s (100,200 B)
		{10_000_000, 6}, // everything fits
	} {
		ctl := newController(t)
		if _, err := ctl.Replenish(ctl.Config().Kappa); err != nil {
			t.Fatalf("Replenish: %v", err)
		}
		q := makeQueue(t, 0.9)
		got := s.Plan(q, &PlanContext{
			BudgetBytes: tc.budget,
			Controller:  ctl,
			EnergyJ:     cellEnergy,
		})
		if len(got) != 1 {
			t.Fatalf("budget %.0f: %d selections, want 1", tc.budget, len(got))
		}
		if got[0].Level != tc.wantLevel {
			t.Fatalf("budget %.0f: level %d, want %d", tc.budget, got[0].Level, tc.wantLevel)
		}
	}
}

func TestRichNoteDeliversEveryoneAtLowBudgetViaDowngrade(t *testing.T) {
	s := &RichNote{}
	q := makeQueue(t, 0.9, 0.8, 0.7, 0.6, 0.5)
	// Budget fits all five at metadata (5 x 200 B) but only one at 5 s.
	got := s.Plan(q, &PlanContext{
		BudgetBytes: 105_000,
		Controller:  newController(t),
		EnergyJ:     cellEnergy,
	})
	if len(got) != 5 {
		t.Fatalf("%d selections, want all 5 (adaptive downgrade)", len(got))
	}
	// The upgrade goes to the highest-content-utility item first.
	byIndex := map[int]int{}
	for _, sel := range got {
		byIndex[sel.Index] = sel.Level
	}
	if byIndex[0] < byIndex[4] {
		t.Fatalf("higher-utility item got level %d < lower-utility item's %d", byIndex[0], byIndex[4])
	}
}

func TestRichNoteOrdersDeliveriesByUtility(t *testing.T) {
	s := &RichNote{}
	q := makeQueue(t, 0.2, 0.9, 0.5)
	got := s.Plan(q, &PlanContext{
		BudgetBytes: 10_000_000,
		Controller:  newController(t),
		EnergyJ:     cellEnergy,
	})
	if len(got) != 3 {
		t.Fatalf("%d selections, want 3", len(got))
	}
	prev := math.Inf(1)
	for _, sel := range got {
		u := q[sel.Index].Rich.Utility(sel.Level)
		if u > prev {
			t.Fatalf("selections not in descending utility order")
		}
		prev = u
	}
	if got[0].Index != 1 {
		t.Fatalf("first delivery is item %d, want highest-utility item 1", got[0].Index)
	}
}

func TestRichNoteEnergyPressureLowersLevels(t *testing.T) {
	s := &RichNote{}
	budget := 2_000_000.0

	// Controller with energy queue at target: no pressure.
	relaxed := newController(t)
	for i := 0; i < 10; i++ {
		if _, err := relaxed.Replenish(30); err != nil {
			t.Fatalf("Replenish: %v", err)
		}
	}
	qRelaxed := makeQueue(t, 0.9)
	selRelaxed := s.Plan(qRelaxed, &PlanContext{BudgetBytes: budget, Controller: relaxed, EnergyJ: cellEnergy})

	// Controller with empty energy queue: strong penalty on energy-hungry
	// levels. Use a high-cost energy function to make the pressure bite.
	pressured := newController(t)
	costly := func(size int64) float64 { return float64(size) / 1000 * 0.4 }
	qPressured := makeQueue(t, 0.9)
	selPressured := s.Plan(qPressured, &PlanContext{BudgetBytes: budget, Controller: pressured, EnergyJ: costly})

	if len(selRelaxed) != 1 || len(selPressured) != 1 {
		t.Fatalf("selections %d/%d, want 1/1", len(selRelaxed), len(selPressured))
	}
	if selPressured[0].Level >= selRelaxed[0].Level {
		t.Fatalf("energy pressure did not lower level: %d >= %d",
			selPressured[0].Level, selRelaxed[0].Level)
	}
}

func TestRichNoteBacklogFavorsDraining(t *testing.T) {
	s := &RichNote{}
	// With a large backlog Q, the Q·s(i) term dominates and pushes the
	// scheduler to select as many items as possible (drain the queue)
	// rather than upgrading a single item.
	ctl := newController(t)
	if err := ctl.OnArrive(500); err != nil { // 500 MB backlog
		t.Fatalf("OnArrive: %v", err)
	}
	q := makeQueue(t, 0.9, 0.1, 0.1, 0.1)
	got := s.Plan(q, &PlanContext{BudgetBytes: 250_000, Controller: ctl, EnergyJ: cellEnergy})
	if len(got) != 4 {
		t.Fatalf("backlogged plan selected %d items, want all 4", len(got))
	}
}

func TestFIFOPlanArrivalOrder(t *testing.T) {
	f, err := NewFIFO(2)
	if err != nil {
		t.Fatalf("NewFIFO: %v", err)
	}
	q := makeQueue(t, 0.1, 0.9, 0.5)
	// Budget fits exactly two level-2 presentations (100,200 B each).
	got := f.Plan(q, &PlanContext{BudgetBytes: 201_000})
	if len(got) != 2 {
		t.Fatalf("%d selections, want 2", len(got))
	}
	if got[0].Index != 0 || got[1].Index != 1 {
		t.Fatalf("FIFO order %v, want arrival order [0 1]", got)
	}
	for _, sel := range got {
		if sel.Level != 2 {
			t.Fatalf("level %d, want fixed 2", sel.Level)
		}
	}
}

func TestFIFOHeadOfLineBlocking(t *testing.T) {
	f, err := NewFIFO(6)
	if err != nil {
		t.Fatalf("NewFIFO: %v", err)
	}
	q := makeQueue(t, 0.5, 0.5)
	// Budget below one level-6 presentation: FIFO delivers nothing, even
	// though nothing else would fit either; with a budget fitting one, it
	// delivers only the head.
	got := f.Plan(q, &PlanContext{BudgetBytes: 100_000})
	if len(got) != 0 {
		t.Fatalf("FIFO delivered %d items under budget starvation, want 0", len(got))
	}
	got = f.Plan(q, &PlanContext{BudgetBytes: 850_000})
	if len(got) != 1 || got[0].Index != 0 {
		t.Fatalf("FIFO selections %v, want head only", got)
	}
}

func TestUtilPlanUtilityOrder(t *testing.T) {
	u, err := NewUtil(3)
	if err != nil {
		t.Fatalf("NewUtil: %v", err)
	}
	q := makeQueue(t, 0.1, 0.9, 0.5)
	got := u.Plan(q, &PlanContext{BudgetBytes: 10_000_000})
	if len(got) != 3 {
		t.Fatalf("%d selections, want 3", len(got))
	}
	if got[0].Index != 1 || got[1].Index != 2 || got[2].Index != 0 {
		t.Fatalf("UTIL order %v, want descending utility [1 2 0]", got)
	}
}

func TestUtilSkipsUnaffordableAndContinues(t *testing.T) {
	u, err := NewUtil(6)
	if err != nil {
		t.Fatalf("NewUtil: %v", err)
	}
	q := makeQueue(t, 0.9, 0.8)
	// Budget fits one level-6 presentation; UTIL takes the best one and
	// skips the second instead of blocking.
	got := u.Plan(q, &PlanContext{BudgetBytes: 850_000})
	if len(got) != 1 || got[0].Index != 0 {
		t.Fatalf("UTIL selections %v, want best item only", got)
	}
}

func TestBaselineConstructorsValidateLevel(t *testing.T) {
	if _, err := NewFIFO(0); err == nil {
		t.Error("FIFO level 0 accepted")
	}
	if _, err := NewUtil(-1); err == nil {
		t.Error("UTIL level -1 accepted")
	}
}

func TestStrategyNames(t *testing.T) {
	s := &RichNote{}
	if s.Name() != "richnote" {
		t.Fatalf("name %q", s.Name())
	}
	f, err := NewFIFO(2)
	if err != nil {
		t.Fatalf("NewFIFO: %v", err)
	}
	if f.Name() != "fifo-L2" {
		t.Fatalf("name %q", f.Name())
	}
	u, err := NewUtil(3)
	if err != nil {
		t.Fatalf("NewUtil: %v", err)
	}
	if u.Name() != "util-L3" {
		t.Fatalf("name %q", u.Name())
	}
}

func TestPlansRespectEmptyQueueAndZeroBudget(t *testing.T) {
	ctl := newController(t)
	strategies := []Strategy{&RichNote{}}
	f, err := NewFIFO(2)
	if err != nil {
		t.Fatalf("NewFIFO: %v", err)
	}
	u, err := NewUtil(2)
	if err != nil {
		t.Fatalf("NewUtil: %v", err)
	}
	strategies = append(strategies, f, u)
	q := makeQueue(t, 0.5)
	for _, s := range strategies {
		if got := s.Plan(nil, &PlanContext{BudgetBytes: 1e9, Controller: ctl}); len(got) != 0 {
			t.Errorf("%s planned %d on empty queue", s.Name(), len(got))
		}
		if got := s.Plan(q, &PlanContext{BudgetBytes: 0, Controller: ctl}); len(got) != 0 {
			t.Errorf("%s planned %d with zero budget", s.Name(), len(got))
		}
	}
}
