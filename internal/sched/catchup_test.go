package sched

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestCatchUpMatchesScannedRounds is the device-level lazy fast-forward
// guarantee: over randomized seeded traces with long idle gaps, a device
// that parks through its quiescent stretches and catches up on wake must
// export state deeply equal to a twin that ran every round — budget
// accrual, battery and network RNG draw counts, controller Q/P/telemetry
// and metrics all included.
func TestCatchUpMatchesScannedRounds(t *testing.T) {
	for _, seed := range []int64{3, 404, 61507} {
		seed := seed
		t.Run("", func(t *testing.T) {
			scanned := newStateTestDevice(t, seed)
			parked := newStateTestDevice(t, seed)
			script := rand.New(rand.NewSource(seed * 31))

			round := 0
			for round < 120 {
				// A burst of active rounds with occasional enqueues.
				active := 2 + script.Intn(5)
				for a := 0; a < active && round < 120; a++ {
					if script.Intn(2) == 0 {
						batch := stateTestItems(round, 1+script.Intn(2))
						if err := scanned.Enqueue(stateTestItems(round, len(batch))); err != nil {
							t.Fatal(err)
						}
						if err := parked.Enqueue(batch); err != nil {
							t.Fatal(err)
						}
					}
					if _, err := scanned.RunRound(round); err != nil {
						t.Fatal(err)
					}
					if _, err := parked.RunRound(round); err != nil {
						t.Fatal(err)
					}
					round++
				}
				// Drain until quiescent: the parked twin keeps stepping while
				// it still has work (mirroring the shard's dirty rule).
				for !parked.Quiescent() && round < 120 {
					if _, err := scanned.RunRound(round); err != nil {
						t.Fatal(err)
					}
					if _, err := parked.RunRound(round); err != nil {
						t.Fatal(err)
					}
					round++
				}
				// A long idle gap: the scanned twin runs every empty round,
				// the parked twin skips all of them and fast-forwards.
				gap := 3 + script.Intn(20)
				for g := 0; g < gap && round < 120; g++ {
					if _, err := scanned.RunRound(round); err != nil {
						t.Fatal(err)
					}
					round++
				}
				if err := parked.CatchUp(round); err != nil {
					t.Fatalf("CatchUp(%d): %v", round, err)
				}
				if !reflect.DeepEqual(parked.ExportState(), scanned.ExportState()) {
					t.Fatalf("state diverged after catching up to round %d", round)
				}
			}
		})
	}
}

// TestCatchUpRefusesQueuedItems pins the guardrail: fast-forward is only
// defined for empty queues (a queued item would have been delivered or
// retried during the skipped rounds), so CatchUp must refuse.
func TestCatchUpRefusesQueuedItems(t *testing.T) {
	d := newStateTestDevice(t, 9)
	if _, err := d.RunRound(0); err != nil {
		t.Fatal(err)
	}
	if err := d.Enqueue(stateTestItems(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.CatchUp(5); err == nil {
		t.Fatal("CatchUp over a non-empty queue accepted")
	}
	// No-op catch-ups (already current or target in the past) succeed.
	if err := d.CatchUp(1); err != nil {
		t.Fatalf("no-op CatchUp: %v", err)
	}
}
