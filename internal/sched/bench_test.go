package sched

import (
	"math/rand"
	"testing"

	"github.com/richnote/richnote/internal/lyapunov"
)

// planEquivalent compares two Plan results element-wise.
func planEquivalent(t *testing.T, round int, want, got []Selection) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("round %d: %d selections, want %d", round, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round %d selection %d: %+v, want %+v", round, i, got[i], want[i])
		}
	}
}

// driveControllers keeps two controllers in lockstep so the scratch and
// no-scratch plans below see identical Lyapunov state every round.
func driveControllers(t *testing.T, a, b *lyapunov.Controller, sels []Selection, queue []Queued) {
	t.Helper()
	for _, c := range []*lyapunov.Controller{a, b} {
		if _, err := c.Replenish(c.Config().Kappa); err != nil {
			t.Fatalf("Replenish: %v", err)
		}
	}
	for _, sel := range sels {
		size := float64(queue[sel.Index].Rich.At(sel.Level).Size)
		for _, c := range []*lyapunov.Controller{a, b} {
			if err := c.OnDeliver(size/bytesPerMB, cellEnergy(int64(size))); err != nil {
				t.Fatalf("OnDeliver: %v", err)
			}
		}
	}
}

// TestRichNotePlanScratchMatchesNilScratch runs the same multi-round
// planning sequence twice — once threading a persistent PlanScratch,
// once with the historical nil-scratch allocation — and requires
// identical selections every round, across varying queue sizes and
// budgets, so stale scratch can never leak between rounds.
func TestRichNotePlanScratchMatchesNilScratch(t *testing.T) {
	s := &RichNote{}
	rng := rand.New(rand.NewSource(41))
	ctlScratch := newController(t)
	ctlFresh := newController(t)
	scratch := &PlanScratch{}
	for round := 0; round < 60; round++ {
		n := 1 + rng.Intn(10)
		utils := make([]float64, n)
		for i := range utils {
			utils[i] = rng.Float64()
		}
		queue := makeQueue(t, utils...)
		budget := rng.Float64() * 2_000_000
		withScratch := s.Plan(queue, &PlanContext{
			Round: round, BudgetBytes: budget, Controller: ctlScratch,
			EnergyJ: cellEnergy, Scratch: scratch,
		})
		without := s.Plan(queue, &PlanContext{
			Round: round, BudgetBytes: budget, Controller: ctlFresh,
			EnergyJ: cellEnergy,
		})
		planEquivalent(t, round, without, withScratch)
		driveControllers(t, ctlScratch, ctlFresh, without, queue)
	}
}

// TestBaselinePlanScratchMatchesNilScratch does the same for the two
// fixed-level baselines, covering the shared planFixed path (queue
// permutation, clamped levels, utility sort).
func TestBaselinePlanScratchMatchesNilScratch(t *testing.T) {
	fifo, err := NewFIFO(4)
	if err != nil {
		t.Fatal(err)
	}
	util, err := NewUtil(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	for _, strat := range []Strategy{fifo, util} {
		scratch := &PlanScratch{}
		for round := 0; round < 60; round++ {
			n := 1 + rng.Intn(10)
			utils := make([]float64, n)
			for i := range utils {
				utils[i] = rng.Float64()
			}
			queue := makeQueue(t, utils...)
			budget := rng.Float64() * 2_000_000
			withScratch := strat.Plan(queue, &PlanContext{
				Round: round, BudgetBytes: budget, Scratch: scratch,
			})
			without := strat.Plan(queue, &PlanContext{
				Round: round, BudgetBytes: budget,
			})
			planEquivalent(t, round, without, withScratch)
		}
	}
}

// TestRichNoteStableTieOrder pins the delivery-order tiebreak: equal
// combined utilities keep ascending queue order (the stable sort's
// guarantee), so replays are deterministic.
func TestRichNoteStableTieOrder(t *testing.T) {
	s := &RichNote{}
	q := makeQueue(t, 0.7, 0.7, 0.7)
	got := s.Plan(q, &PlanContext{
		BudgetBytes: 10_000_000,
		Controller:  newController(t),
		EnergyJ:     cellEnergy,
	})
	if len(got) != 3 {
		t.Fatalf("%d selections, want 3", len(got))
	}
	for i, sel := range got {
		if sel.Index != i {
			t.Fatalf("tied utilities reordered: position %d got index %d", i, sel.Index)
		}
	}
}

// TestPlanZeroAllocSteadyState pins the tentpole property end to end:
// with a warmed scratch, a full RichNote plan allocates nothing.
func TestPlanZeroAllocSteadyState(t *testing.T) {
	s := &RichNote{}
	queue := makeQueue(t, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2)
	ctx := &PlanContext{
		BudgetBytes: 500_000,
		Controller:  newController(t),
		EnergyJ:     cellEnergy,
		Scratch:     &PlanScratch{},
	}
	s.Plan(queue, ctx) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		s.Plan(queue, ctx)
	})
	if allocs != 0 {
		t.Fatalf("RichNote.Plan allocated %.1f objects/op in steady state, want 0", allocs)
	}
}

// TestPlanFixedZeroAllocSteadyState pins the same property for the
// baselines' shared planFixed path.
func TestPlanFixedZeroAllocSteadyState(t *testing.T) {
	util, err := NewUtil(4)
	if err != nil {
		t.Fatal(err)
	}
	queue := makeQueue(t, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2)
	ctx := &PlanContext{BudgetBytes: 500_000, Scratch: &PlanScratch{}}
	util.Plan(queue, ctx) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		util.Plan(queue, ctx)
	})
	if allocs != 0 {
		t.Fatalf("Util.Plan allocated %.1f objects/op in steady state, want 0", allocs)
	}
}

// benchQueue builds a 64-item queue with distinct utilities — a busy
// user's round.
func benchQueue(b *testing.B) []Queued {
	b.Helper()
	utils := make([]float64, 64)
	for i := range utils {
		utils[i] = float64(i+1) / 65
	}
	return makeQueue(b, utils...)
}

// BenchmarkPlanRound is the scheduler's steady-state hot path: one
// RichNote plan per round against a persistent scratch. Must report
// 0 allocs/op.
func BenchmarkPlanRound(b *testing.B) {
	s := &RichNote{}
	queue := benchQueue(b)
	ctx := &PlanContext{
		BudgetBytes: 2_000_000,
		Controller:  newController(b),
		EnergyJ:     cellEnergy,
		Scratch:     &PlanScratch{},
	}
	s.Plan(queue, ctx) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		s.Plan(queue, ctx)
	}
}

// BenchmarkPlanRoundNoScratch is the pre-refactor behaviour — per-call
// allocation of groups, choices, solver state and the sort closure —
// kept as the before-side of the comparison in bench_results/P1.csv.
func BenchmarkPlanRoundNoScratch(b *testing.B) {
	s := &RichNote{}
	queue := benchQueue(b)
	ctx := &PlanContext{
		BudgetBytes: 2_000_000,
		Controller:  newController(b),
		EnergyJ:     cellEnergy,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		s.Plan(queue, ctx)
	}
}
