package sched

// dataBudget is the cellular data-plan ledger B(t). Besides the running
// balance it tracks cumulative debits and refunds, and Refund caps itself
// at the outstanding debit total — so "refunds never exceed charges" holds
// by construction, not by caller discipline. Debit and Refund return the
// amount actually moved; the spendcheck analyzer (DESIGN.md §9) flags any
// caller that discards those results.
type dataBudget struct {
	balance  float64 // current balance B(t), bytes
	debited  float64 // cumulative bytes charged for transfer attempts
	refunded float64 // cumulative bytes refunded for failed attempts
}

// Balance returns the current budget in bytes.
func (b *dataBudget) Balance() float64 { return b.balance }

// Debited returns the cumulative bytes charged.
func (b *dataBudget) Debited() float64 { return b.debited }

// Refunded returns the cumulative bytes refunded.
func (b *dataBudget) Refunded() float64 { return b.refunded }

// Accrue adds the per-round increment θ to the balance.
func (b *dataBudget) Accrue(n float64) { b.balance += n }

// Reset sets the balance to n, discarding any rollover (the PerRoundBudget
// variant).
func (b *dataBudget) Reset(n float64) { b.balance = n }

// Debit charges n bytes against the plan and returns the amount charged.
// Affordability is the caller's check (deliverRound skips selections larger
// than the balance); Debit itself never blocks, matching Algorithm 2's
// unconditional step-3 deduction.
func (b *dataBudget) Debit(n float64) float64 {
	b.balance -= n
	b.debited += n
	return n
}

// restore overwrites the ledger with snapshotted values. Only the device's
// RestoreState calls it; the caller validates refunded <= debited.
func (b *dataBudget) restore(balance, debited, refunded float64) {
	b.balance = balance
	b.debited = debited
	b.refunded = refunded
}

// Refund returns up to n bytes to the balance, capped at the outstanding
// debits (debited − refunded), and reports the amount actually returned.
func (b *dataBudget) Refund(n float64) float64 {
	if outstanding := b.debited - b.refunded; n > outstanding {
		n = outstanding
	}
	if n < 0 {
		n = 0
	}
	b.balance += n
	b.refunded += n
	return n
}
