package sched

// dataBudget is the cellular data-plan ledger B(t). Besides the running
// balance it tracks cumulative debits and refunds, and Refund caps itself
// at the outstanding debit total — so "refunds never exceed charges" holds
// by construction, not by caller discipline. Debit and Refund return the
// amount actually moved; the spendcheck analyzer (DESIGN.md §9) flags any
// caller that discards those results.
//
// The balance is held lazily as base + pendingRounds·θ: Accrue and
// AccrueN only bump the pending round count, and the product is folded
// into base ("materialized") the moment anything other than an accrual
// touches the ledger. Because both the per-round loop (k calls to
// Accrue) and the fast-forward path (one AccrueN(k)) leave the identical
// (base, pendingRounds) pair, a parked device caught up after k idle
// rounds is bit-identical to one scanned every round — the whole point
// of the representation. Materialization points are part of the
// trajectory: snapshots export the lazy pair, not the folded value, so a
// crash-recovered ledger folds at exactly the same Debit it would have
// live (DESIGN.md §14).
type dataBudget struct {
	base          float64 // materialized balance, bytes
	pendingRounds int64   // accrued rounds not yet folded into base
	pendingTheta  float64 // per-round increment θ the pending rounds accrue at
	debited       float64 // cumulative bytes charged for transfer attempts
	refunded      float64 // cumulative bytes refunded for failed attempts
}

// Balance returns the current budget in bytes.
func (b *dataBudget) Balance() float64 {
	return b.base + float64(b.pendingRounds)*b.pendingTheta
}

// Debited returns the cumulative bytes charged.
func (b *dataBudget) Debited() float64 { return b.debited }

// Refunded returns the cumulative bytes refunded.
func (b *dataBudget) Refunded() float64 { return b.refunded }

// lazy exposes the unmaterialized representation for snapshot export.
func (b *dataBudget) lazy() (base float64, pendingRounds int64) {
	return b.base, b.pendingRounds
}

// materialize folds the pending accruals into the base balance.
func (b *dataBudget) materialize() {
	if b.pendingRounds != 0 {
		b.base += float64(b.pendingRounds) * b.pendingTheta
		b.pendingRounds = 0
	}
}

// Accrue adds the per-round increment θ to the balance.
//
// richnote:allocfree
func (b *dataBudget) Accrue(n float64) { b.AccrueN(1, n) }

// AccrueN adds k rounds' worth of the per-round increment θ in one step —
// the closed form a parked device uses to catch up. A θ different from
// the pending one (impossible for a device, whose θ is fixed at
// construction) materializes first so mixed-rate accruals stay exact.
//
// richnote:allocfree
func (b *dataBudget) AccrueN(k int64, n float64) {
	if k <= 0 {
		return
	}
	if b.pendingRounds != 0 && b.pendingTheta != n {
		b.materialize()
	}
	b.pendingTheta = n
	b.pendingRounds += k
}

// Reset sets the balance to n, discarding any rollover (the PerRoundBudget
// variant).
func (b *dataBudget) Reset(n float64) {
	b.base = n
	b.pendingRounds = 0
}

// Debit charges n bytes against the plan and returns the amount charged.
// Affordability is the caller's check (deliverRound skips selections larger
// than the balance); Debit itself never blocks, matching Algorithm 2's
// unconditional step-3 deduction.
func (b *dataBudget) Debit(n float64) float64 {
	b.materialize()
	b.base -= n
	b.debited += n
	return n
}

// restore overwrites the ledger with snapshotted values, preserving the
// lazy split so materialization happens at the same future operation it
// would have in the run that took the snapshot. Only the device's
// RestoreState calls it; the caller validates refunded <= debited and
// supplies the device's fixed θ.
func (b *dataBudget) restore(base float64, pendingRounds int64, theta, debited, refunded float64) {
	b.base = base
	b.pendingRounds = pendingRounds
	b.pendingTheta = theta
	b.debited = debited
	b.refunded = refunded
}

// Refund returns up to n bytes to the balance, capped at the outstanding
// debits (debited − refunded), and reports the amount actually returned.
func (b *dataBudget) Refund(n float64) float64 {
	if outstanding := b.debited - b.refunded; n > outstanding {
		n = outstanding
	}
	if n < 0 {
		n = 0
	}
	b.materialize()
	b.base += n
	b.refunded += n
	return n
}
