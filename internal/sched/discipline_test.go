package sched

import (
	"testing"

	"github.com/richnote/richnote/internal/notif"
)

func TestDropUndeliveredClearsQueue(t *testing.T) {
	u, err := NewUtil(6)
	if err != nil {
		t.Fatalf("NewUtil: %v", err)
	}
	fx := newFixture(t, u, func(c *DeviceConfig) {
		c.DropUndelivered = true
		c.WeeklyBudgetBytes = 168 * 850_000 // one L6 item per round
	})
	d := fx.device
	items := []Queued{
		{Rich: makeRich(t, 1, 0.9)},
		{Rich: makeRich(t, 2, 0.8)},
		{Rich: makeRich(t, 3, 0.7)},
	}
	if err := d.Enqueue(items); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	res, err := d.RunRound(0)
	if err != nil {
		t.Fatalf("RunRound: %v", err)
	}
	// Budget affords one item; the digest drops the other two.
	if res.Delivered != 1 {
		t.Fatalf("delivered %d, want 1", res.Delivered)
	}
	if d.QueueLen() != 0 {
		t.Fatalf("queue %d after digest round, want 0 (dropped)", d.QueueLen())
	}
	// Best item won (utility order).
	rep := fx.collector.Aggregate()
	if rep.Delivered != 1 {
		t.Fatalf("report delivered %d", rep.Delivered)
	}
}

func TestDropUndeliveredKeepsQueueWhileOffline(t *testing.T) {
	u, err := NewUtil(3)
	if err != nil {
		t.Fatalf("NewUtil: %v", err)
	}
	fx := newFixture(t, u, func(c *DeviceConfig) {
		c.DropUndelivered = true
		c.Network = offlineModel(t)
	})
	d := fx.device
	if err := d.Enqueue([]Queued{{Rich: makeRich(t, 1, 0.9)}}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	if _, err := d.RunRound(0); err != nil {
		t.Fatalf("RunRound: %v", err)
	}
	if d.QueueLen() != 1 {
		t.Fatalf("offline digest dropped queued items: queue %d, want 1", d.QueueLen())
	}
}

func TestPerRoundBudgetDoesNotAccrue(t *testing.T) {
	f, err := NewFIFO(3)
	if err != nil {
		t.Fatalf("NewFIFO: %v", err)
	}
	fx := newFixture(t, f, func(c *DeviceConfig) {
		c.PerRoundBudget = true
		c.WeeklyBudgetBytes = 10 << 20 // theta ~62 KB < one L3 item
	})
	d := fx.device
	if err := d.Enqueue([]Queued{{Rich: makeRich(t, 1, 0.9)}}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	for round := 0; round < 50; round++ {
		res, err := d.RunRound(round)
		if err != nil {
			t.Fatalf("RunRound: %v", err)
		}
		if res.Delivered != 0 {
			t.Fatalf("per-round budget delivered an unaffordable item at round %d", round)
		}
	}
	theta := float64(10<<20) / 168
	if d.Budget() > theta+1 {
		t.Fatalf("budget %f accrued beyond theta %f", d.Budget(), theta)
	}
}

func TestMaxDeliveriesPerRoundCaps(t *testing.T) {
	fx := newFixture(t, &RichNote{}, func(c *DeviceConfig) {
		c.MaxDeliveriesPerRound = 2
		c.WeeklyBudgetBytes = 1 << 30
	})
	d := fx.device
	items := make([]Queued, 6)
	for i := range items {
		items[i] = Queued{Rich: makeRich(t, notif.ItemID(i+1), 0.5)}
	}
	if err := d.Enqueue(items); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	res, err := d.RunRound(0)
	if err != nil {
		t.Fatalf("RunRound: %v", err)
	}
	if res.Delivered != 2 {
		t.Fatalf("delivered %d with cap 2, want 2", res.Delivered)
	}
	if d.QueueLen() != 4 {
		t.Fatalf("queue %d, want 4 retained for later rounds", d.QueueLen())
	}
	// Subsequent rounds drain the rest.
	total := res.Delivered
	for round := 1; round < 5 && d.QueueLen() > 0; round++ {
		r, err := d.RunRound(round)
		if err != nil {
			t.Fatalf("RunRound: %v", err)
		}
		total += r.Delivered
	}
	if total != 6 {
		t.Fatalf("total delivered %d, want 6", total)
	}
}

func TestUnlimitedDeliveriesByDefault(t *testing.T) {
	fx := newFixture(t, &RichNote{}, func(c *DeviceConfig) {
		c.WeeklyBudgetBytes = 1 << 30
	})
	d := fx.device
	items := make([]Queued, 40)
	for i := range items {
		items[i] = Queued{Rich: makeRich(t, notif.ItemID(i+1), 0.5)}
	}
	if err := d.Enqueue(items); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	res, err := d.RunRound(0)
	if err != nil {
		t.Fatalf("RunRound: %v", err)
	}
	if res.Delivered != 40 {
		t.Fatalf("delivered %d, want all 40 without a cap", res.Delivered)
	}
}

func TestSetNetworkValidation(t *testing.T) {
	fx := newFixture(t, &RichNote{})
	if err := fx.device.SetNetwork(nil); err == nil {
		t.Fatal("nil network accepted")
	}
}
