package sched

import (
	"testing"
	"time"

	"github.com/richnote/richnote/internal/energy"
	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/sim"
)

type deviceFixture struct {
	device    *Device
	collector *metrics.Collector
}

func newFixture(t *testing.T, strategy Strategy, opts ...func(*DeviceConfig)) *deviceFixture {
	t.Helper()
	rng := sim.NewRNG(1, sim.StreamNetwork)
	net, err := network.NewModel(network.AlwaysCellMatrix(), network.StateCell, rng)
	if err != nil {
		t.Fatalf("network.NewModel: %v", err)
	}
	bat, err := energy.NewBattery(energy.BatteryConfig{}, sim.NewRNG(1, sim.StreamEnergy))
	if err != nil {
		t.Fatalf("NewBattery: %v", err)
	}
	col := metrics.NewCollector()
	cfg := DeviceConfig{
		User:              7,
		Strategy:          strategy,
		WeeklyBudgetBytes: 20 << 20, // 20 MB/week
		Epoch:             time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC),
		Network:           net,
		Capacity:          network.DefaultCapacity(),
		Battery:           bat,
		Transfer:          energy.DefaultTransferModel(),
		Collector:         col,
	}
	if _, ok := strategy.(*RichNote); ok {
		cfg.Controller = newController(t)
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return &deviceFixture{device: d, collector: col}
}

func TestNewDeviceValidation(t *testing.T) {
	fx := newFixture(t, &RichNote{}) // establishes a valid base config
	base := fx.device.cfg

	cases := []struct {
		name   string
		mutate func(*DeviceConfig)
	}{
		{"nil strategy", func(c *DeviceConfig) { c.Strategy = nil }},
		{"nil network", func(c *DeviceConfig) { c.Network = nil }},
		{"nil battery", func(c *DeviceConfig) { c.Battery = nil }},
		{"nil collector", func(c *DeviceConfig) { c.Collector = nil }},
		{"zero budget", func(c *DeviceConfig) { c.WeeklyBudgetBytes = 0 }},
		{"richnote without controller", func(c *DeviceConfig) { c.Controller = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := NewDevice(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestEnqueueValidatesItems(t *testing.T) {
	fx := newFixture(t, &RichNote{})
	bad := Queued{Rich: notif.RichItem{Item: notif.Item{ID: 1}}} // no presentations
	if err := fx.device.Enqueue([]Queued{bad}); err == nil {
		t.Fatal("malformed item accepted")
	}
}

func TestBudgetAccrualAndRollover(t *testing.T) {
	fx := newFixture(t, &RichNote{})
	d := fx.device
	// No items: budget accrues theta per round and rolls over.
	for round := 0; round < 10; round++ {
		if _, err := d.RunRound(round); err != nil {
			t.Fatalf("RunRound: %v", err)
		}
	}
	wantTheta := float64(20<<20) / 168
	if got := d.Budget(); got < 9.9*wantTheta || got > 10.1*wantTheta {
		t.Fatalf("budget after 10 idle rounds = %f, want ~%f", got, 10*wantTheta)
	}
}

func TestDeviceDeliversAndSettlesQueue(t *testing.T) {
	fx := newFixture(t, &RichNote{})
	d := fx.device
	items := []Queued{
		{Rich: makeRich(t, 1, 0.9), Clicked: true, ClickRound: 5},
		{Rich: makeRich(t, 2, 0.4)},
	}
	if err := d.Enqueue(items); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	if d.QueueLen() != 2 {
		t.Fatalf("queue %d, want 2", d.QueueLen())
	}
	var delivered int
	for round := 0; round < 20 && d.QueueLen() > 0; round++ {
		res, err := d.RunRound(round)
		if err != nil {
			t.Fatalf("RunRound: %v", err)
		}
		delivered += res.Delivered
	}
	if d.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d left", d.QueueLen())
	}
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2", delivered)
	}
	rep := fx.collector.Aggregate()
	if rep.Delivered != 2 || rep.Arrived != 2 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Recall() != 1 {
		t.Fatalf("recall %f, want 1 (the clicked item was delivered)", rep.Recall())
	}
	if rep.EnergyJ <= 0 {
		t.Fatal("no energy recorded")
	}
}

func TestDeviceRespectsDataPlanBudget(t *testing.T) {
	// Tiny weekly budget: only metadata presentations can ever be afforded
	// by the baselines' fixed rich level, so UTIL delivers nothing early.
	u, err := NewUtil(6)
	if err != nil {
		t.Fatalf("NewUtil: %v", err)
	}
	fx := newFixture(t, u, func(c *DeviceConfig) { c.WeeklyBudgetBytes = 1 << 20 }) // 1 MB/week
	d := fx.device
	if err := d.Enqueue([]Queued{{Rich: makeRich(t, 1, 0.9)}}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	// Level 6 costs 800,200 bytes; theta is ~6.2 KB/round, so ~128 rounds
	// must pass before the first delivery.
	deliveredAt := -1
	for round := 0; round < 168; round++ {
		res, err := d.RunRound(round)
		if err != nil {
			t.Fatalf("RunRound: %v", err)
		}
		if res.Delivered > 0 {
			deliveredAt = round
			break
		}
	}
	if deliveredAt < 100 {
		t.Fatalf("level-6 delivery at round %d, want >= 100 (budget accrual)", deliveredAt)
	}
}

func TestDeviceOfflineNeverDelivers(t *testing.T) {
	offMatrix := network.Matrix{
		{1, 0, 0},
		{1, 0, 0},
		{1, 0, 0},
	}
	rng := sim.NewRNG(2, sim.StreamNetwork)
	net, err := network.NewModel(offMatrix, network.StateOff, rng)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	fx := newFixture(t, &RichNote{}, func(c *DeviceConfig) { c.Network = net })
	d := fx.device
	if err := d.Enqueue([]Queued{{Rich: makeRich(t, 1, 0.9)}}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	for round := 0; round < 24; round++ {
		res, err := d.RunRound(round)
		if err != nil {
			t.Fatalf("RunRound: %v", err)
		}
		if res.Delivered != 0 {
			t.Fatal("delivered while offline")
		}
	}
	if d.QueueLen() != 1 {
		t.Fatal("queue mutated while offline")
	}
}

func TestDeviceStopsWhenBatteryDepleted(t *testing.T) {
	bat, err := energy.NewBattery(energy.BatteryConfig{
		CapacityJ:    100,
		InitialLevel: 0.02, // 2 J available: below one transfer
		DrainPerHour: 0.001,
		// Recharge window placed where rounds never land.
		RechargeStartHour: 3, RechargeEndHour: 4,
	}, sim.NewRNG(3, sim.StreamEnergy))
	if err != nil {
		t.Fatalf("NewBattery: %v", err)
	}
	fx := newFixture(t, &RichNote{}, func(c *DeviceConfig) {
		c.Battery = bat
		c.Epoch = time.Date(2015, 1, 1, 8, 0, 0, 0, time.UTC)
	})
	d := fx.device
	if err := d.Enqueue([]Queued{{Rich: makeRich(t, 1, 0.9)}}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	res, err := d.RunRound(0)
	if err != nil {
		t.Fatalf("RunRound: %v", err)
	}
	if res.Delivered != 0 {
		t.Fatal("delivered with a depleted battery")
	}
}

// planAll selects the given level for every queue entry, ignoring every
// budget in the context — a hostile strategy for exercising deliverRound's
// misfit guards.
type planAll struct{ level int }

func (p planAll) Name() string { return "plan-all" }

func (p planAll) Plan(queue []Queued, ctx *PlanContext) []Selection {
	sels := make([]Selection, len(queue))
	for i := range queue {
		sels[i] = Selection{Index: i, Level: p.level}
	}
	return sels
}

// TestDepletedBatteryChargesNoOverhead pins the lazy-overhead contract: a
// battery that cannot afford the radio ramp plus the first transfer spends
// nothing at all — the old code drained the whole remaining charge into a
// partial batch overhead and recorded energy for a round that delivered
// nothing.
func TestDepletedBatteryChargesNoOverhead(t *testing.T) {
	// Two identical batteries on identical RNG streams: ref receives only
	// the round's Tick, so any extra drop on bat is a Spend.
	cfg := energy.BatteryConfig{
		CapacityJ:         100,
		InitialLevel:      0.02, // 2 J: below the cell batch overhead alone
		RechargeStartHour: 3, RechargeEndHour: 4,
	}
	bat, err := energy.NewBattery(cfg, sim.NewRNG(3, sim.StreamEnergy))
	if err != nil {
		t.Fatalf("NewBattery: %v", err)
	}
	ref, err := energy.NewBattery(cfg, sim.NewRNG(3, sim.StreamEnergy))
	if err != nil {
		t.Fatalf("NewBattery: %v", err)
	}
	fx := newFixture(t, planAll{level: 1}, func(c *DeviceConfig) {
		c.Battery = bat
		c.Epoch = time.Date(2015, 1, 1, 8, 0, 0, 0, time.UTC)
	})
	d := fx.device
	if err := d.Enqueue([]Queued{{Rich: makeRich(t, 1, 0.9)}}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	res, err := d.RunRound(0)
	if err != nil {
		t.Fatalf("RunRound: %v", err)
	}
	if res.Delivered != 0 {
		t.Fatal("delivered with a depleted battery")
	}
	if res.EnergyJ != 0 {
		t.Fatalf("round energy %f, want 0 (no delivery, no overhead)", res.EnergyJ)
	}
	if rep := fx.collector.Aggregate(); rep.EnergyJ != 0 {
		t.Fatalf("collector energy %f, want 0", rep.EnergyJ)
	}
	ref.Tick(8)
	if got := bat.Level(); got != ref.Level() {
		t.Fatalf("battery level %f, want %f (Tick only, no spend)", got, ref.Level())
	}
}

// TestMisfitSelectionsChargeNoOverhead pins the other half of the lazy
// overhead: a round whose planned selections all misfit the data plan never
// powers the radio, so no overhead is spent or recorded.
func TestMisfitSelectionsChargeNoOverhead(t *testing.T) {
	cfg := energy.BatteryConfig{
		CapacityJ:         1000,
		InitialLevel:      1,
		RechargeStartHour: 3, RechargeEndHour: 4,
	}
	bat, err := energy.NewBattery(cfg, sim.NewRNG(3, sim.StreamEnergy))
	if err != nil {
		t.Fatalf("NewBattery: %v", err)
	}
	ref, err := energy.NewBattery(cfg, sim.NewRNG(3, sim.StreamEnergy))
	if err != nil {
		t.Fatalf("NewBattery: %v", err)
	}
	// Level 6 costs ~800 KB; one round of a 1 MB/week plan accrues ~6 KB, so
	// the selection always misfits the data-plan check.
	fx := newFixture(t, planAll{level: 6}, func(c *DeviceConfig) {
		c.Battery = bat
		c.WeeklyBudgetBytes = 1 << 20
		c.Epoch = time.Date(2015, 1, 1, 8, 0, 0, 0, time.UTC)
	})
	d := fx.device
	if err := d.Enqueue([]Queued{{Rich: makeRich(t, 1, 0.9)}}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	res, err := d.RunRound(0)
	if err != nil {
		t.Fatalf("RunRound: %v", err)
	}
	if res.Planned == 0 {
		t.Fatal("strategy planned nothing; the test needs a misfitting selection")
	}
	if res.Delivered != 0 {
		t.Fatal("delivered a selection that exceeds the data plan")
	}
	if res.EnergyJ != 0 {
		t.Fatalf("round energy %f, want 0 (all selections misfit)", res.EnergyJ)
	}
	ref.Tick(8)
	if got := bat.Level(); got != ref.Level() {
		t.Fatalf("battery level %f, want %f (Tick only, no spend)", got, ref.Level())
	}
}

func TestWifiDoesNotBillDataPlan(t *testing.T) {
	rng := sim.NewRNG(4, sim.StreamNetwork)
	wifiMatrix := network.Matrix{
		{0, 0, 1},
		{0, 0, 1},
		{0, 0, 1},
	}
	net, err := network.NewModel(wifiMatrix, network.StateWifi, rng)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	fx := newFixture(t, &RichNote{}, func(c *DeviceConfig) {
		c.Network = net
		c.WeeklyBudgetBytes = 1 << 20 // tiny plan
	})
	d := fx.device
	if err := d.Enqueue([]Queued{{Rich: makeRich(t, 1, 0.9)}}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	budgetBefore := d.Budget()
	res, err := d.RunRound(0)
	if err != nil {
		t.Fatalf("RunRound: %v", err)
	}
	if res.Delivered != 1 {
		t.Fatalf("wifi delivery count %d, want 1", res.Delivered)
	}
	wantTheta := float64(1<<20) / 168
	if got := d.Budget(); got < budgetBefore+wantTheta-1 || got > budgetBefore+wantTheta+1 {
		t.Fatalf("wifi delivery changed data plan budget: %f -> %f", budgetBefore, got)
	}
	// On abundant WiFi the scheduler picks a rich presentation even though
	// the cellular plan is tiny — the Fig. 5(c) effect.
	rep := fx.collector.Aggregate()
	foundRich := false
	for lvl := range rep.LevelCounts {
		if lvl >= 4 {
			foundRich = true
		}
	}
	if !foundRich {
		t.Fatalf("wifi delivery used levels %v, want a rich level (>= 4)", rep.LevelCounts)
	}
}

func TestRoundResultQueueAfter(t *testing.T) {
	fx := newFixture(t, &RichNote{})
	d := fx.device
	if err := d.Enqueue([]Queued{{Rich: makeRich(t, 1, 0.9)}}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	res, err := d.RunRound(0)
	if err != nil {
		t.Fatalf("RunRound: %v", err)
	}
	if res.QueueAfter != d.QueueLen() {
		t.Fatalf("QueueAfter %d != QueueLen %d", res.QueueAfter, d.QueueLen())
	}
}

// offlineModel returns a network process pinned to OFF.
func offlineModel(t *testing.T) *network.Model {
	t.Helper()
	m := network.Matrix{{1, 0, 0}, {1, 0, 0}, {1, 0, 0}}
	model, err := network.NewModel(m, network.StateOff, sim.NewRNG(9, sim.StreamNetwork))
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return model
}

func TestOnDeliveryHook(t *testing.T) {
	var observed []notif.Delivery
	fx := newFixture(t, &RichNote{}, func(c *DeviceConfig) {
		c.OnDelivery = func(d notif.Delivery) { observed = append(observed, d) }
	})
	if _, err := fx.device.cfg.Controller.Replenish(30); err != nil {
		t.Fatalf("Replenish: %v", err)
	}
	if err := fx.device.Enqueue(makeQueue(t, 0.9)); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	res, err := fx.device.RunRound(0)
	if err != nil {
		t.Fatalf("RunRound: %v", err)
	}
	if res.Delivered == 0 {
		t.Fatal("expected a delivery with ample budget")
	}
	if len(observed) != res.Delivered {
		t.Fatalf("hook observed %d deliveries, round delivered %d", len(observed), res.Delivered)
	}
	if observed[0].Recipient != fx.device.User() || observed[0].Level < 1 {
		t.Fatalf("hook delivery %+v malformed", observed[0])
	}
	rep := fx.collector.Aggregate()
	if rep.Delivered != len(observed) {
		t.Fatalf("collector recorded %d, hook %d — hook must mirror the collector", rep.Delivered, len(observed))
	}
}

func TestControllerStats(t *testing.T) {
	fx := newFixture(t, &RichNote{})
	if _, ok := fx.device.ControllerStats(); !ok {
		t.Fatal("RichNote device must expose controller stats")
	}
	if _, err := fx.device.RunRound(0); err != nil {
		t.Fatalf("RunRound: %v", err)
	}
	st, _ := fx.device.ControllerStats()
	if st.Rounds != 1 {
		t.Fatalf("controller rounds = %d, want 1", st.Rounds)
	}
	fifo, err := NewFIFO(2)
	if err != nil {
		t.Fatalf("NewFIFO: %v", err)
	}
	base := newFixture(t, fifo)
	if _, ok := base.device.ControllerStats(); ok {
		t.Fatal("baseline device must not expose controller stats")
	}
}
