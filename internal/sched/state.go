package sched

import (
	"fmt"

	"github.com/richnote/richnote/internal/lyapunov"
	"github.com/richnote/richnote/internal/network"
)

// DeviceState is the complete mutable state of a Device, exported for
// snapshot/restore (DESIGN.md §12). Configuration is excluded: restore
// happens into a device rebuilt from the same DeviceConfig, so only the
// state that accumulates across rounds is captured. RNG-backed components
// (battery jitter, connectivity walk, fault draws) are captured as draw
// counts: re-seeding identically and fast-forwarding by the count resumes
// the exact random sequence, which is what makes recovery bit-identical.
type DeviceState struct {
	// Queue is the scheduling queue, in order.
	Queue []Queued

	// Cellular data-plan ledger B(t), exported in its lazy representation
	// (balance = base + pending·θ): folding the pending product into the
	// base happens at the same future Debit/Refund/Reset in a restored run
	// as it would have live, keeping recovery bit-identical (θ itself is
	// fixed by the device configuration and not exported).
	BudgetBase          float64
	BudgetPendingRounds int64
	BudgetDebited       float64
	BudgetRefunded      float64

	// Battery level and jitter-stream position.
	BatteryLevel float64
	BatteryDraws uint64

	// Connectivity state and walk position.
	NetworkState network.State
	NetworkDraws uint64

	// Fault-stream position (0 when faults are disabled).
	FaultDraws uint64

	// Lyapunov controller state; HasController is false for baselines.
	Controller    lyapunov.State
	HasController bool

	// NextRound is the round the device will process next; the event-driven
	// shard settles every device to its clock before exporting, but the
	// field keeps the device export self-contained.
	NextRound int
}

// ExportState captures the device's mutable state. The queue is deep-copied
// at the slice level so later rounds do not mutate the export; the items
// inside are treated as immutable once queued (the scheduler only rewrites
// Attempts/LevelCap through the copy's own entries).
func (d *Device) ExportState() DeviceState {
	base, pending := d.budget.lazy()
	s := DeviceState{
		Queue:               append([]Queued(nil), d.queue...),
		BudgetBase:          base,
		BudgetPendingRounds: pending,
		BudgetDebited:       d.budget.Debited(),
		BudgetRefunded:      d.budget.Refunded(),
		BatteryLevel:        d.cfg.Battery.Level(),
		BatteryDraws:        d.cfg.Battery.Draws(),
		NetworkState:        d.cfg.Network.State(),
		NetworkDraws:        d.cfg.Network.Draws(),
		FaultDraws:          d.cfg.Faults.Draws(),
		NextRound:           d.nextRound,
	}
	if d.cfg.Controller != nil {
		s.Controller = d.cfg.Controller.ExportState()
		s.HasController = true
	}
	return s
}

// RestoreState overwrites the device's mutable state with a previously
// exported snapshot. The device must be freshly constructed from the same
// DeviceConfig (same strategy, budgets, seeds) as the exporting one;
// restoring into a device that has already run rounds fails because the RNG
// streams can only be fast-forwarded, never rewound.
func (d *Device) RestoreState(s DeviceState) error {
	if s.HasController != (d.cfg.Controller != nil) {
		return fmt.Errorf("sched: restore controller presence mismatch: snapshot %t, device %t",
			s.HasController, d.cfg.Controller != nil)
	}
	if s.BudgetPendingRounds < 0 {
		return fmt.Errorf("sched: restore negative pending accrual rounds %d", s.BudgetPendingRounds)
	}
	if s.BudgetRefunded > s.BudgetDebited {
		return fmt.Errorf("sched: restore ledger refunded %f exceeds debited %f",
			s.BudgetRefunded, s.BudgetDebited)
	}
	for i := range s.Queue {
		if err := s.Queue[i].Rich.Validate(); err != nil {
			return fmt.Errorf("sched: restore queue entry %d: %w", i, err)
		}
	}
	if err := d.cfg.Battery.Restore(s.BatteryLevel, s.BatteryDraws); err != nil {
		return fmt.Errorf("sched: restore: %w", err)
	}
	if err := d.cfg.Network.Restore(s.NetworkState, s.NetworkDraws); err != nil {
		return fmt.Errorf("sched: restore: %w", err)
	}
	if err := d.cfg.Faults.Restore(s.FaultDraws); err != nil {
		return fmt.Errorf("sched: restore: %w", err)
	}
	if d.cfg.Controller != nil {
		if err := d.cfg.Controller.RestoreState(s.Controller); err != nil {
			return fmt.Errorf("sched: restore: %w", err)
		}
	}
	d.queue = append(d.queue[:0], s.Queue...)
	d.budget.restore(s.BudgetBase, s.BudgetPendingRounds, d.theta, s.BudgetDebited, s.BudgetRefunded)
	d.nextRound = s.NextRound
	return nil
}
