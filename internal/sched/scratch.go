package sched

import "github.com/richnote/richnote/internal/mckp"

// PlanScratch holds the per-device buffers a Strategy reuses across
// rounds: the MCKP groups and their shared choices backing array, the
// reusable greedy solver, the selection/utility pair the delivery order
// is sorted over, and the baselines' order/level buffers. A Device owns
// one scratch and threads it through PlanContext, making the steady-
// state plan phase allocation-free (see DESIGN.md §10).
//
// A PlanScratch is single-owner state: it must only be used by the
// goroutine driving the owning device's rounds. Selections returned by
// Plan alias the scratch and are valid until the next Plan call with
// the same scratch.
type PlanScratch struct {
	// groups and choices back the per-round MCKP instance; every group's
	// Choices is a three-index subslice of the shared choices array.
	groups  []mckp.Group
	choices []mckp.Choice
	// solver keeps the upgrade heap, assignment and hull-increment
	// buffers of Algorithm 1 alive across rounds.
	solver mckp.Solver
	// sorter holds the selections plus their precomputed utilities;
	// sorting goes through sort.Stable on its pointer so ties keep queue
	// order without a closure or reflection swapper.
	sorter selSorter
	// order, levels and orderUtils are the baselines' scratch: queue
	// permutation, per-entry clamped levels and per-entry utilities.
	order      []int
	levels     []int
	orderUtils []float64
	orderSort  orderSorter
}

// selSorter stable-sorts selections by descending precomputed utility.
// utils is index-aligned with sels and swapped alongside it, so the
// comparator never re-derives a utility inside the sort.
type selSorter struct {
	sels  []Selection
	utils []float64
}

func (s *selSorter) Len() int           { return len(s.sels) }
func (s *selSorter) Less(i, j int) bool { return s.utils[i] > s.utils[j] }
func (s *selSorter) Swap(i, j int) {
	s.sels[i], s.sels[j] = s.sels[j], s.sels[i]
	s.utils[i], s.utils[j] = s.utils[j], s.utils[i]
}

// orderSorter stable-sorts a queue permutation by descending utility,
// with utils indexed by queue position (not permutation position).
type orderSorter struct {
	order []int
	utils []float64
}

func (s *orderSorter) Len() int           { return len(s.order) }
func (s *orderSorter) Less(i, j int) bool { return s.utils[s.order[i]] > s.utils[s.order[j]] }
func (s *orderSorter) Swap(i, j int)      { s.order[i], s.order[j] = s.order[j], s.order[i] }
