package sched

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/richnote/richnote/internal/energy"
	"github.com/richnote/richnote/internal/lyapunov"
	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/notif"
)

// DeviceConfig wires one user's device state.
type DeviceConfig struct {
	User     notif.UserID
	Strategy Strategy

	// WeeklyBudgetBytes is the user's cellular data-plan budget per week;
	// the per-round increment θ is WeeklyBudgetBytes / RoundsPerWeek.
	WeeklyBudgetBytes int64
	// RoundsPerWeek defaults to 168 (hourly rounds).
	RoundsPerWeek int

	// Epoch and RoundLen place rounds on the wall clock (for battery
	// diurnal patterns and delivery timestamps).
	Epoch    time.Time
	RoundLen time.Duration

	Network  *network.Model
	Capacity network.Capacity
	Battery  *energy.Battery
	Transfer energy.TransferModel

	// Faults, when non-nil, injects per-transfer failures (outright loss
	// and mid-transfer disconnect) into the delivery path. A nil model
	// never faults and keeps the delivery path bit-identical to the
	// pre-fault-injection scheduler.
	Faults *network.FaultModel

	// MaxAttempts bounds the failed transfer attempts per item before the
	// item is dropped from the scheduling queue. Zero retries forever
	// (RichNote's persistent queue discipline).
	MaxAttempts int

	// DegradeOnFailure, when true, caps a failed item's presentation
	// ladder one level below the failed attempt on each retry: richer
	// presentations transfer longer and are likelier to hit a disconnect,
	// so backing down the ladder trades utility for delivery probability.
	// The cap is monotone with the Eq. 8 utility curve — lower levels
	// never have higher utility, so a degraded delivery is worth no more
	// than the original plan.
	DegradeOnFailure bool

	// StartRound is the first round this device will execute. Devices
	// registered mid-run start at the shard's current round; they never ran
	// the earlier rounds, so CatchUp must not replay them. Defaults to 0.
	StartRound int

	// Controller is required when Strategy is *RichNote; ignored otherwise.
	Controller *lyapunov.Controller

	// Collector receives metric events; required.
	Collector *metrics.Collector

	// OnDelivery, when set, observes every confirmed delivery after the
	// collector records it. The live server uses it to maintain per-user
	// recent-delivery feeds; it runs on the goroutine driving RunRound.
	OnDelivery func(notif.Delivery)

	// MaxDeliveriesPerRound caps how many notifications the device accepts
	// per round — the delivery queue drains at the pace of the user's
	// attention, not instantaneously (pushing dozens of notifications per
	// hour would overwhelm the user, the overload the paper's introduction
	// warns about). Selections beyond the cap return to the scheduling
	// queue with no budget consumed, exactly as Algorithm 2's
	// budget-deduction-on-delivery prescribes. Zero means unlimited.
	MaxDeliveriesPerRound int

	// PerRoundBudget, when true, resets the data budget to θ each round
	// instead of rolling it over. Algorithm 2 explicitly rolls unused
	// budget over; industry push pipelines typically do not. Used by the
	// baseline-variant ablation.
	PerRoundBudget bool

	// DropUndelivered, when true, clears the scheduling queue after every
	// online round: items the round's budget could not afford are dropped
	// instead of retried — the discipline of an industry batch digest,
	// which sends today's batch and moves on. RichNote's persistent
	// scheduling queue (Algorithm 2) never drops; this models the paper's
	// FIFO/UTIL baselines as deployed in Spotify's real-time and batch
	// modes.
	DropUndelivered bool
}

// Validation errors.
var (
	ErrNilStrategy       = errors.New("sched: nil strategy")
	ErrNilNetwork        = errors.New("sched: nil network model")
	ErrNilBattery        = errors.New("sched: nil battery")
	ErrNilCollector      = errors.New("sched: nil collector")
	ErrNeedController    = errors.New("sched: RichNote strategy requires a Lyapunov controller")
	ErrNonPositiveBudget = errors.New("sched: weekly budget must be positive")
)

// Device executes the per-round scheduling loop for one user.
type Device struct {
	cfg   DeviceConfig
	theta float64 // per-round data-budget increment, bytes

	queue  []Queued
	budget dataBudget // cellular data-plan ledger B(t), bytes

	// kappa mirrors the controller's per-round energy target for
	// replenishment; zero for baselines.
	kappa float64

	// Hot-path scratch, reused every round so the steady-state loop
	// allocates nothing (DESIGN.md §10). All of it is owned by the
	// goroutine driving RunRound — the shard goroutine in the server, a
	// worker goroutine in the pipeline.
	scratch PlanScratch // richnote:confined(shard)
	// planCtx is built once (its EnergyJ closure binds the device) and
	// re-stamped with the round's budget and network state.
	planCtx PlanContext // richnote:confined(shard)
	// curState is the network state planCtx.EnergyJ prices against.
	curState network.State // richnote:confined(shard)
	// settled flags queue indices leaving the queue this round, whether
	// delivered or dropped after exhausting their retry budget.
	settled []bool // richnote:confined(shard)

	// nextRound is the round the next RunRound or CatchUp will process;
	// the gap between it and the shard clock is exactly what CatchUp
	// replays when an event-driven shard wakes a parked device.
	nextRound int // richnote:confined(shard)
	// ffBase anchors ffHour: the round whose hour ffHour(0) returns. Bound
	// through a field (rather than a per-call closure) so CatchUp stays
	// allocation-free.
	ffBase int // richnote:confined(shard)
	// ffHour is the hourAt method value (bound once in NewDevice so
	// CatchUp passes it to Battery.FastForward without allocating).
	ffHour func(int) int // richnote:confined(shard)
}

// NewDevice validates the configuration and returns a device.
func NewDevice(cfg DeviceConfig) (*Device, error) {
	if cfg.Strategy == nil {
		return nil, ErrNilStrategy
	}
	if cfg.Network == nil {
		return nil, ErrNilNetwork
	}
	if cfg.Battery == nil {
		return nil, ErrNilBattery
	}
	if cfg.Collector == nil {
		return nil, ErrNilCollector
	}
	if cfg.WeeklyBudgetBytes <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrNonPositiveBudget, cfg.WeeklyBudgetBytes)
	}
	if cfg.RoundsPerWeek <= 0 {
		cfg.RoundsPerWeek = 168
	}
	if cfg.RoundLen <= 0 {
		cfg.RoundLen = time.Hour
	}
	if _, isRichNote := cfg.Strategy.(*RichNote); isRichNote && cfg.Controller == nil {
		return nil, ErrNeedController
	}
	d := &Device{
		cfg:       cfg,
		theta:     float64(cfg.WeeklyBudgetBytes) / float64(cfg.RoundsPerWeek),
		nextRound: cfg.StartRound,
	}
	if cfg.Controller != nil {
		d.kappa = cfg.Controller.Config().Kappa
	}
	d.bindFastForward()
	d.bindPlanContext()
	return d, nil
}

// bindFastForward creates the hourAt method value once, so CatchUp can
// hand it to Battery.FastForward without allocating per call.
func (d *Device) bindFastForward() {
	d.ffHour = d.hourAt
}

// hourAt maps an offset from ffBase to the wall-clock hour of that round
// — exactly the hour RunRound would have passed to Battery.Tick.
func (d *Device) hourAt(i int) int {
	return d.cfg.Epoch.Add(time.Duration(d.ffBase+i) * d.cfg.RoundLen).Hour()
}

// bindPlanContext builds the reusable plan context once: its energy
// closure prices against the device's current network state, so
// deliverRound only re-stamps Round, BudgetBytes and curState each round
// and planning allocates nothing in steady state.
func (d *Device) bindPlanContext() {
	d.planCtx = PlanContext{
		Controller: d.cfg.Controller,
		Scratch:    &d.scratch,
		EnergyJ: func(size int64) float64 {
			j, err := d.cfg.Transfer.TransferJ(size, d.curState)
			if err != nil {
				return 0 // offline states never reach here
			}
			return j
		},
	}
}

// User returns the device's owner.
func (d *Device) User() notif.UserID { return d.cfg.User }

// QueueLen returns the scheduling-queue length.
func (d *Device) QueueLen() int { return len(d.queue) }

// Budget returns the accumulated cellular data budget in bytes.
func (d *Device) Budget() float64 { return d.budget.Balance() }

// BudgetLedger returns the cumulative data-plan debits and refunds in
// bytes. Refunded never exceeds Debited (the ledger caps refunds at the
// outstanding debit total).
func (d *Device) BudgetLedger() (debited, refunded float64) {
	return d.budget.Debited(), d.budget.Refunded()
}

// ControllerStats snapshots the device's Lyapunov telemetry; ok is false
// for baseline strategies without a controller. Must be called from the
// goroutine that drives RunRound (the controller is not lock-protected).
func (d *Device) ControllerStats() (lyapunov.Stats, bool) {
	if d.cfg.Controller == nil {
		return lyapunov.Stats{}, false
	}
	return d.cfg.Controller.Stats(), true
}

// SetNetwork replaces the device's connectivity process mid-run, e.g. when
// a user moves from cellular to home WiFi. The scheduling queue, budgets
// and controller state persist.
func (d *Device) SetNetwork(m *network.Model) error {
	if m == nil {
		return ErrNilNetwork
	}
	d.cfg.Network = m
	return nil
}

// Enqueue adds newly arrived items to the scheduling queue and notifies
// the metrics collector and Lyapunov controller. It is all-or-nothing: a
// batch that fails validation (or, defensively, a controller charge)
// leaves no partial queue, collector or controller state behind.
func (d *Device) Enqueue(items []Queued) error {
	// Phase 1: validate every item before touching any state. Validate
	// guarantees positive presentation sizes, so every item's MB backlog
	// contribution below is positive and OnArrive cannot reject it.
	for i := range items {
		if err := items[i].Rich.Validate(); err != nil {
			return fmt.Errorf("sched: enqueue: %w", err)
		}
	}
	// Phase 2: charge the controller for the whole batch. The controller's
	// error contract is wider than our invariant (it rejects negative MB),
	// so on the unreachable failure we roll back the charges already made
	// rather than leave Q(t) counting items that never entered the queue.
	if d.cfg.Controller != nil {
		for i := range items {
			if err := d.cfg.Controller.OnArrive(float64(items[i].Rich.TotalSize()) / bytesPerMB); err != nil {
				for j := i - 1; j >= 0; j-- {
					// Rollback cannot itself fail: the amounts were accepted
					// by OnArrive moments ago, so they are non-negative.
					_ = d.cfg.Controller.OnDrop(float64(items[j].Rich.TotalSize()) / bytesPerMB)
				}
				return fmt.Errorf("sched: %w", err)
			}
		}
	}
	// Phase 3: commit. Nothing below can fail.
	for _, it := range items {
		d.queue = append(d.queue, it)
		d.cfg.Collector.OnArrive(d.cfg.User, it.Clicked)
	}
	return nil
}

// RoundResult summarizes one executed round.
type RoundResult struct {
	Round     int
	State     network.State
	Planned   int
	Delivered int
	Bytes     int64
	EnergyJ   float64

	// Failed counts transfer attempts lost to injected faults this round;
	// Dropped counts items abandoned after MaxAttempts failed attempts.
	// RefundedBytes is the data-plan volume returned for failed cellular
	// attempts. All zero without fault injection.
	Failed        int
	Dropped       int
	RefundedBytes float64

	QueueAfter int
}

// NextRound returns the round the next RunRound or CatchUp will process.
func (d *Device) NextRound() int { return d.nextRound }

// Quiescent reports whether skipping this device's upcoming rounds is
// exactly reproducible later: the scheduling queue is empty (an idle
// round plans nothing and delivers nothing) and the Lyapunov controller,
// if any, is quiescent (Q is zero and P sits above κ where replenishment
// is gated off). The battery and connectivity walks do advance every
// round, but their idle trajectory depends only on the round index and
// their own RNG streams, which CatchUp replays draw-for-draw — so a
// quiescent device may be parked and caught up bit-identically
// (DESIGN.md §14). Note the backlog check is on the controller's Q, not
// just the queue: float residue left in Q by the [·]+ floors keeps a
// device conservatively dirty.
func (d *Device) Quiescent() bool {
	if len(d.queue) != 0 {
		return false
	}
	if d.cfg.Controller != nil && !d.cfg.Controller.Quiescent() {
		return false
	}
	return true
}

// SkipRound records that the device sat out the given round without
// executing it — the shard's legacy behavior when an inbox flush fails
// validation. Only the round bookkeeping advances; budget, battery and
// RNG streams stay untouched, exactly as the historical full-scan loop
// left them.
func (d *Device) SkipRound(round int) {
	if round+1 > d.nextRound {
		d.nextRound = round + 1
	}
}

// CatchUp fast-forwards a parked device across the rounds it skipped,
// leaving it bit-identical to one that executed each round with an empty
// queue: the data budget accrues in closed form (AccrueN, or a single
// idempotent Reset for the per-round variant), the battery replays its
// k diurnal ticks, the controller advances its round counter (closed
// form — see lyapunov.FastForward), and the connectivity walk replays
// its k draws. Replenish needs no replay: the parking contract
// guarantees P > κ for every skipped round, where it is a no-op, and
// ReplenishRate is a pure function of battery level so not evaluating
// it has no effect. The component replays run sequentially rather than
// interleaved per round, which is exact because their RNG streams are
// independent. A device with queued items cannot be caught up.
//
// richnote:allocfree
func (d *Device) CatchUp(toRound int) error {
	k := toRound - d.nextRound
	if k <= 0 {
		return nil
	}
	if len(d.queue) != 0 {
		return fmt.Errorf("sched: catch up to round %d with %d queued items", toRound, len(d.queue))
	}
	if d.cfg.PerRoundBudget {
		// Each skipped round resets to θ; k idempotent resets collapse to one.
		d.budget.Reset(d.theta)
	} else {
		d.budget.AccrueN(int64(k), d.theta)
	}
	d.ffBase = d.nextRound
	d.cfg.Battery.FastForward(k, d.ffHour)
	if d.cfg.Controller != nil {
		d.cfg.Controller.FastForward(k)
	}
	d.cfg.Network.StepN(k)
	d.nextRound = toRound
	return nil
}

// RunRound executes Algorithm 2 for one round: budget update, energy
// replenishment, network step, selection, delivery and queue settlement.
func (d *Device) RunRound(round int) (RoundResult, error) {
	res := RoundResult{Round: round}
	d.nextRound = round + 1

	// Step 2 of Algorithm 2: data and energy budget update.
	if d.cfg.PerRoundBudget {
		d.budget.Reset(d.theta) // industry variant: unused budget evaporates
	} else {
		d.budget.Accrue(d.theta)
	}
	when := d.cfg.Epoch.Add(time.Duration(round) * d.cfg.RoundLen)
	d.cfg.Battery.Tick(when.Hour())
	if d.cfg.Controller != nil {
		if _, err := d.cfg.Controller.Replenish(d.cfg.Battery.ReplenishRate(d.kappa)); err != nil {
			return res, fmt.Errorf("sched: %w", err)
		}
	}

	state := d.cfg.Network.Step()
	res.State = state

	if state.Online() && len(d.queue) > 0 {
		if err := d.deliverRound(round, when, state, &res); err != nil {
			return res, err
		}
	}
	if d.cfg.Controller != nil {
		d.cfg.Controller.EndRound()
	}
	res.QueueAfter = len(d.queue)
	return res, nil
}

// deliverRound plans with the strategy and downloads selections subject to
// link capacity, data plan and battery.
func (d *Device) deliverRound(round int, when time.Time, state network.State, res *RoundResult) error {
	linkCap := d.cfg.Capacity.For(state)
	planBudget := float64(linkCap.Bytes)
	if linkCap.BillsDataPlan {
		planBudget = math.Min(planBudget, d.budget.Balance())
	}
	if planBudget <= 0 {
		return nil
	}
	d.curState = state
	d.planCtx.Round = round
	d.planCtx.BudgetBytes = planBudget
	sels := d.cfg.Strategy.Plan(d.queue, &d.planCtx)
	res.Planned = len(sels)
	if len(sels) == 0 {
		return nil
	}

	// The radio batch overhead is paid once per round, but only when the
	// first affordable selection is confirmed: a round whose selections all
	// misfit the link or data budget never powers the radio, and a depleted
	// battery must not pay a partial ramp for downloads it cannot run.
	overhead := d.cfg.Transfer.BatchOverheadJ(state)
	overheadPaid := false

	remainingLink := linkCap.Bytes
	if cap(d.settled) < len(d.queue) {
		d.settled = make([]bool, len(d.queue))
	}
	d.settled = d.settled[:len(d.queue)]
	for i := range d.settled {
		d.settled[i] = false
	}
	for _, sel := range sels {
		if d.cfg.MaxDeliveriesPerRound > 0 && res.Delivered >= d.cfg.MaxDeliveriesPerRound {
			break // delivery queue pace: the rest re-plan next round
		}
		entry := &d.queue[sel.Index]
		p := entry.Rich.At(sel.Level)
		if p.Level == 0 {
			continue // defensive: strategy returned an invalid level
		}
		if p.Size > remainingLink {
			continue
		}
		if linkCap.BillsDataPlan && float64(p.Size) > d.budget.Balance() {
			continue
		}
		transferJ, err := d.cfg.Transfer.TransferJ(p.Size, state)
		if err != nil {
			return fmt.Errorf("sched: %w", err)
		}
		need := transferJ
		if !overheadPaid {
			need += overhead
		}
		if need > d.cfg.Battery.Level()*d.cfg.Battery.CapacityJ() {
			break // battery depleted: no further downloads this round
		}

		// Step 3 of Algorithm 2 charges the plan at delivery time; with
		// fault injection the charge moves to attempt time and a failed
		// attempt refunds it in full below. The charge is the same single
		// subtraction at the same value, so fault-free runs stay
		// bit-identical.
		var charged float64
		if linkCap.BillsDataPlan {
			charged = d.budget.Debit(float64(p.Size))
		}
		outcome := d.cfg.Faults.Attempt(p.Size, state)
		if !outcome.Delivered {
			if err := d.failTransfer(entry, sel, outcome, charged, overhead, overheadPaid, linkCap.BillsDataPlan, state, res); err != nil {
				return err
			}
			// The failed attempt powered the radio: the batch overhead is
			// paid (by failTransfer, if not earlier) and stays paid.
			overheadPaid = true
			remainingLink -= outcome.Bytes
			continue
		}

		if spent := d.cfg.Battery.Spend(need); spent < need {
			// The affordability guard above makes a partial draw
			// unreachable; undo the attempt charge and stop the round
			// rather than account a download the battery did not pay for.
			if charged > 0 {
				res.RefundedBytes += d.budget.Refund(charged)
			}
			break
		}
		if !overheadPaid {
			overheadPaid = true
			d.cfg.Collector.OnEnergy(d.cfg.User, overhead)
			res.EnergyJ += overhead
		}

		remainingLink -= p.Size
		if d.cfg.Controller != nil {
			if err := d.cfg.Controller.OnDeliver(float64(entry.Rich.TotalSize())/bytesPerMB, transferJ); err != nil {
				return fmt.Errorf("sched: %w", err)
			}
		}
		delivery := notif.Delivery{
			ItemID:         entry.Rich.Item.ID,
			Recipient:      d.cfg.User,
			Level:          p.Level,
			Size:           p.Size,
			Utility:        entry.Rich.Utility(p.Level),
			TrueUtility:    entry.TrueUc * p.Utility,
			EnergyJ:        transferJ,
			Retries:        entry.Attempts,
			Degraded:       entry.LevelCap > 0 && entry.LevelCap < entry.Rich.Levels(),
			ArrivedRound:   entry.Rich.ArrivedRound,
			DeliveredRound: round,
			DeliveredAt:    when,
		}
		d.cfg.Collector.OnDeliver(delivery, metrics.DeliveryOutcome{
			Clicked:     entry.Clicked,
			BeforeClick: entry.Clicked && round <= entry.ClickRound,
		})
		if d.cfg.OnDelivery != nil {
			d.cfg.OnDelivery(delivery)
		}
		d.settled[sel.Index] = true
		res.Delivered++
		res.Bytes += p.Size
		res.EnergyJ += transferJ
	}

	if d.cfg.DropUndelivered {
		// Batch-digest discipline: today's batch was offered; whatever the
		// budget could not afford is dropped, not retried.
		for i := range d.queue {
			d.queue[i] = Queued{}
		}
		d.queue = d.queue[:0]
		return nil
	}
	if res.Delivered > 0 || res.Dropped > 0 {
		// Drop all presentations of delivered (or abandoned) items from the
		// scheduling queue (Algorithm 2, step 3).
		kept := d.queue[:0]
		for qi := range d.queue {
			if !d.settled[qi] {
				kept = append(kept, d.queue[qi])
			}
		}
		// Zero the tail so released entries do not pin memory.
		for i := len(kept); i < len(d.queue); i++ {
			d.queue[i] = Queued{}
		}
		d.queue = kept
	}
	return nil
}

// failTransfer settles one failed transfer attempt: the battery pays only
// the energy actually burned (the bytes that crossed the link plus the
// batch overhead if this attempt powered the radio), the data-plan charge
// is refunded in full, the controller drains P(t) by the wasted energy
// while Q(t) keeps counting the still-queued item, and the entry's attempt
// counter advances — capping its ladder one level down when degradation is
// on, or leaving the queue entirely once MaxAttempts is exhausted.
func (d *Device) failTransfer(entry *Queued, sel Selection, outcome network.TransferOutcome,
	charged, overhead float64, overheadPaid, bills bool, state network.State, res *RoundResult) error {
	partialJ, err := d.cfg.Transfer.TransferJ(outcome.Bytes, state)
	if err != nil {
		return fmt.Errorf("sched: %w", err)
	}
	burn := partialJ
	if !overheadPaid {
		burn += overhead
	}
	// burn <= the need the affordability guard just admitted (partial
	// bytes cost no more than the full payload), so the draw is full.
	if spent := d.cfg.Battery.Spend(burn); spent < burn {
		return fmt.Errorf("sched: battery underpaid failed transfer: spent %f of %f", spent, burn)
	}
	if !overheadPaid {
		d.cfg.Collector.OnEnergy(d.cfg.User, overhead)
		res.EnergyJ += overhead
	}
	if bills {
		res.RefundedBytes += d.budget.Refund(charged)
	}
	d.cfg.Collector.OnTransferFailure(d.cfg.User, partialJ)
	res.EnergyJ += partialJ
	res.Failed++
	if d.cfg.Controller != nil {
		if err := d.cfg.Controller.OnTransferFailure(partialJ); err != nil {
			return fmt.Errorf("sched: %w", err)
		}
	}

	entry.Attempts++
	if d.cfg.DegradeOnFailure && sel.Level > 1 {
		if lower := sel.Level - 1; entry.LevelCap == 0 || lower < entry.LevelCap {
			entry.LevelCap = lower
		}
	}
	if d.cfg.MaxAttempts > 0 && entry.Attempts >= d.cfg.MaxAttempts {
		d.settled[sel.Index] = true
		res.Dropped++
		d.cfg.Collector.OnDrop(d.cfg.User)
		if d.cfg.Controller != nil {
			if err := d.cfg.Controller.OnDrop(float64(entry.Rich.TotalSize()) / bytesPerMB); err != nil {
				return fmt.Errorf("sched: %w", err)
			}
		}
	}
	return nil
}
