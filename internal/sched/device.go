package sched

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/richnote/richnote/internal/energy"
	"github.com/richnote/richnote/internal/lyapunov"
	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/notif"
)

// DeviceConfig wires one user's device state.
type DeviceConfig struct {
	User     notif.UserID
	Strategy Strategy

	// WeeklyBudgetBytes is the user's cellular data-plan budget per week;
	// the per-round increment θ is WeeklyBudgetBytes / RoundsPerWeek.
	WeeklyBudgetBytes int64
	// RoundsPerWeek defaults to 168 (hourly rounds).
	RoundsPerWeek int

	// Epoch and RoundLen place rounds on the wall clock (for battery
	// diurnal patterns and delivery timestamps).
	Epoch    time.Time
	RoundLen time.Duration

	Network  *network.Model
	Capacity network.Capacity
	Battery  *energy.Battery
	Transfer energy.TransferModel

	// Controller is required when Strategy is *RichNote; ignored otherwise.
	Controller *lyapunov.Controller

	// Collector receives metric events; required.
	Collector *metrics.Collector

	// OnDelivery, when set, observes every confirmed delivery after the
	// collector records it. The live server uses it to maintain per-user
	// recent-delivery feeds; it runs on the goroutine driving RunRound.
	OnDelivery func(notif.Delivery)

	// MaxDeliveriesPerRound caps how many notifications the device accepts
	// per round — the delivery queue drains at the pace of the user's
	// attention, not instantaneously (pushing dozens of notifications per
	// hour would overwhelm the user, the overload the paper's introduction
	// warns about). Selections beyond the cap return to the scheduling
	// queue with no budget consumed, exactly as Algorithm 2's
	// budget-deduction-on-delivery prescribes. Zero means unlimited.
	MaxDeliveriesPerRound int

	// PerRoundBudget, when true, resets the data budget to θ each round
	// instead of rolling it over. Algorithm 2 explicitly rolls unused
	// budget over; industry push pipelines typically do not. Used by the
	// baseline-variant ablation.
	PerRoundBudget bool

	// DropUndelivered, when true, clears the scheduling queue after every
	// online round: items the round's budget could not afford are dropped
	// instead of retried — the discipline of an industry batch digest,
	// which sends today's batch and moves on. RichNote's persistent
	// scheduling queue (Algorithm 2) never drops; this models the paper's
	// FIFO/UTIL baselines as deployed in Spotify's real-time and batch
	// modes.
	DropUndelivered bool
}

// Validation errors.
var (
	ErrNilStrategy       = errors.New("sched: nil strategy")
	ErrNilNetwork        = errors.New("sched: nil network model")
	ErrNilBattery        = errors.New("sched: nil battery")
	ErrNilCollector      = errors.New("sched: nil collector")
	ErrNeedController    = errors.New("sched: RichNote strategy requires a Lyapunov controller")
	ErrNonPositiveBudget = errors.New("sched: weekly budget must be positive")
)

// Device executes the per-round scheduling loop for one user.
type Device struct {
	cfg   DeviceConfig
	theta float64 // per-round data-budget increment, bytes

	queue  []Queued
	budget float64 // accumulated cellular budget B(t), bytes

	// kappa mirrors the controller's per-round energy target for
	// replenishment; zero for baselines.
	kappa float64

	// Hot-path scratch, reused every round so the steady-state loop
	// allocates nothing (DESIGN.md §10). All of it is owned by the
	// goroutine driving RunRound — the shard goroutine in the server, a
	// worker goroutine in the pipeline.
	scratch PlanScratch // richnote:confined(shard)
	// planCtx is built once (its EnergyJ closure binds the device) and
	// re-stamped with the round's budget and network state.
	planCtx PlanContext // richnote:confined(shard)
	// curState is the network state planCtx.EnergyJ prices against.
	curState network.State // richnote:confined(shard)
	// delivered flags queue indices delivered this round.
	delivered []bool // richnote:confined(shard)
}

// NewDevice validates the configuration and returns a device.
func NewDevice(cfg DeviceConfig) (*Device, error) {
	if cfg.Strategy == nil {
		return nil, ErrNilStrategy
	}
	if cfg.Network == nil {
		return nil, ErrNilNetwork
	}
	if cfg.Battery == nil {
		return nil, ErrNilBattery
	}
	if cfg.Collector == nil {
		return nil, ErrNilCollector
	}
	if cfg.WeeklyBudgetBytes <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrNonPositiveBudget, cfg.WeeklyBudgetBytes)
	}
	if cfg.RoundsPerWeek <= 0 {
		cfg.RoundsPerWeek = 168
	}
	if cfg.RoundLen <= 0 {
		cfg.RoundLen = time.Hour
	}
	if _, isRichNote := cfg.Strategy.(*RichNote); isRichNote && cfg.Controller == nil {
		return nil, ErrNeedController
	}
	d := &Device{
		cfg:   cfg,
		theta: float64(cfg.WeeklyBudgetBytes) / float64(cfg.RoundsPerWeek),
	}
	if cfg.Controller != nil {
		d.kappa = cfg.Controller.Config().Kappa
	}
	d.bindPlanContext()
	return d, nil
}

// bindPlanContext builds the reusable plan context once: its energy
// closure prices against the device's current network state, so
// deliverRound only re-stamps Round, BudgetBytes and curState each round
// and planning allocates nothing in steady state.
func (d *Device) bindPlanContext() {
	d.planCtx = PlanContext{
		Controller: d.cfg.Controller,
		Scratch:    &d.scratch,
		EnergyJ: func(size int64) float64 {
			j, err := d.cfg.Transfer.TransferJ(size, d.curState)
			if err != nil {
				return 0 // offline states never reach here
			}
			return j
		},
	}
}

// User returns the device's owner.
func (d *Device) User() notif.UserID { return d.cfg.User }

// QueueLen returns the scheduling-queue length.
func (d *Device) QueueLen() int { return len(d.queue) }

// Budget returns the accumulated cellular data budget in bytes.
func (d *Device) Budget() float64 { return d.budget }

// ControllerStats snapshots the device's Lyapunov telemetry; ok is false
// for baseline strategies without a controller. Must be called from the
// goroutine that drives RunRound (the controller is not lock-protected).
func (d *Device) ControllerStats() (lyapunov.Stats, bool) {
	if d.cfg.Controller == nil {
		return lyapunov.Stats{}, false
	}
	return d.cfg.Controller.Stats(), true
}

// SetNetwork replaces the device's connectivity process mid-run, e.g. when
// a user moves from cellular to home WiFi. The scheduling queue, budgets
// and controller state persist.
func (d *Device) SetNetwork(m *network.Model) error {
	if m == nil {
		return ErrNilNetwork
	}
	d.cfg.Network = m
	return nil
}

// Enqueue adds newly arrived items to the scheduling queue and notifies
// the metrics collector and Lyapunov controller.
func (d *Device) Enqueue(items []Queued) error {
	for i := range items {
		if err := items[i].Rich.Validate(); err != nil {
			return fmt.Errorf("sched: enqueue: %w", err)
		}
	}
	for _, it := range items {
		d.queue = append(d.queue, it)
		d.cfg.Collector.OnArrive(d.cfg.User, it.Clicked)
		if d.cfg.Controller != nil {
			if err := d.cfg.Controller.OnArrive(float64(it.Rich.TotalSize()) / bytesPerMB); err != nil {
				return fmt.Errorf("sched: %w", err)
			}
		}
	}
	return nil
}

// RoundResult summarizes one executed round.
type RoundResult struct {
	Round      int
	State      network.State
	Planned    int
	Delivered  int
	Bytes      int64
	EnergyJ    float64
	QueueAfter int
}

// RunRound executes Algorithm 2 for one round: budget update, energy
// replenishment, network step, selection, delivery and queue settlement.
func (d *Device) RunRound(round int) (RoundResult, error) {
	res := RoundResult{Round: round}

	// Step 2 of Algorithm 2: data and energy budget update.
	if d.cfg.PerRoundBudget {
		d.budget = d.theta // industry variant: unused budget evaporates
	} else {
		d.budget += d.theta
	}
	when := d.cfg.Epoch.Add(time.Duration(round) * d.cfg.RoundLen)
	d.cfg.Battery.Tick(when.Hour())
	if d.cfg.Controller != nil {
		if _, err := d.cfg.Controller.Replenish(d.cfg.Battery.ReplenishRate(d.kappa)); err != nil {
			return res, fmt.Errorf("sched: %w", err)
		}
	}

	state := d.cfg.Network.Step()
	res.State = state

	if state.Online() && len(d.queue) > 0 {
		if err := d.deliverRound(round, when, state, &res); err != nil {
			return res, err
		}
	}
	if d.cfg.Controller != nil {
		d.cfg.Controller.EndRound()
	}
	res.QueueAfter = len(d.queue)
	return res, nil
}

// deliverRound plans with the strategy and downloads selections subject to
// link capacity, data plan and battery.
func (d *Device) deliverRound(round int, when time.Time, state network.State, res *RoundResult) error {
	linkCap := d.cfg.Capacity.For(state)
	planBudget := float64(linkCap.Bytes)
	if linkCap.BillsDataPlan {
		planBudget = math.Min(planBudget, d.budget)
	}
	if planBudget <= 0 {
		return nil
	}
	d.curState = state
	d.planCtx.Round = round
	d.planCtx.BudgetBytes = planBudget
	sels := d.cfg.Strategy.Plan(d.queue, &d.planCtx)
	res.Planned = len(sels)
	if len(sels) == 0 {
		return nil
	}

	// The radio batch overhead is paid once per round, but only when the
	// first affordable selection is confirmed: a round whose selections all
	// misfit the link or data budget never powers the radio, and a depleted
	// battery must not pay a partial ramp for downloads it cannot run.
	overhead := d.cfg.Transfer.BatchOverheadJ(state)
	overheadPaid := false

	remainingLink := linkCap.Bytes
	if cap(d.delivered) < len(d.queue) {
		d.delivered = make([]bool, len(d.queue))
	}
	d.delivered = d.delivered[:len(d.queue)]
	for i := range d.delivered {
		d.delivered[i] = false
	}
	for _, sel := range sels {
		if d.cfg.MaxDeliveriesPerRound > 0 && res.Delivered >= d.cfg.MaxDeliveriesPerRound {
			break // delivery queue pace: the rest re-plan next round
		}
		entry := &d.queue[sel.Index]
		p := entry.Rich.At(sel.Level)
		if p.Level == 0 {
			continue // defensive: strategy returned an invalid level
		}
		if p.Size > remainingLink {
			continue
		}
		if linkCap.BillsDataPlan && float64(p.Size) > d.budget {
			continue
		}
		transferJ, err := d.cfg.Transfer.TransferJ(p.Size, state)
		if err != nil {
			return fmt.Errorf("sched: %w", err)
		}
		need := transferJ
		if !overheadPaid {
			need += overhead
		}
		if need > d.cfg.Battery.Level()*d.cfg.Battery.CapacityJ() {
			break // battery depleted: no further downloads this round
		}
		if spent := d.cfg.Battery.Spend(need); spent < need {
			// The affordability guard above makes a partial draw
			// unreachable; stop the round rather than account a
			// download the battery did not pay for.
			break
		}
		if !overheadPaid {
			overheadPaid = true
			d.cfg.Collector.OnEnergy(d.cfg.User, overhead)
			res.EnergyJ += overhead
		}

		remainingLink -= p.Size
		if linkCap.BillsDataPlan {
			d.budget -= float64(p.Size) // step 3: budget deduction
		}
		if d.cfg.Controller != nil {
			if err := d.cfg.Controller.OnDeliver(float64(entry.Rich.TotalSize())/bytesPerMB, transferJ); err != nil {
				return fmt.Errorf("sched: %w", err)
			}
		}
		delivery := notif.Delivery{
			ItemID:         entry.Rich.Item.ID,
			Recipient:      d.cfg.User,
			Level:          p.Level,
			Size:           p.Size,
			Utility:        entry.Rich.Utility(p.Level),
			TrueUtility:    entry.TrueUc * p.Utility,
			EnergyJ:        transferJ,
			ArrivedRound:   entry.Rich.ArrivedRound,
			DeliveredRound: round,
			DeliveredAt:    when,
		}
		d.cfg.Collector.OnDeliver(delivery, metrics.DeliveryOutcome{
			Clicked:     entry.Clicked,
			BeforeClick: entry.Clicked && round <= entry.ClickRound,
		})
		if d.cfg.OnDelivery != nil {
			d.cfg.OnDelivery(delivery)
		}
		d.delivered[sel.Index] = true
		res.Delivered++
		res.Bytes += p.Size
		res.EnergyJ += transferJ
	}

	if d.cfg.DropUndelivered {
		// Batch-digest discipline: today's batch was offered; whatever the
		// budget could not afford is dropped, not retried.
		for i := range d.queue {
			d.queue[i] = Queued{}
		}
		d.queue = d.queue[:0]
		return nil
	}
	if res.Delivered > 0 {
		// Drop all presentations of delivered items from the scheduling
		// queue (Algorithm 2, step 3).
		kept := d.queue[:0]
		for qi := range d.queue {
			if !d.delivered[qi] {
				kept = append(kept, d.queue[qi])
			}
		}
		// Zero the tail so released entries do not pin memory.
		for i := len(kept); i < len(d.queue); i++ {
			d.queue[i] = Queued{}
		}
		d.queue = kept
	}
	return nil
}
