package sched

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/richnote/richnote/internal/energy"
	"github.com/richnote/richnote/internal/lyapunov"
	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/notif"
)

// newStateTestDevice builds a RichNote device on deterministic seeds. Both
// the original and the restored replica call it with the same seed so their
// RNG streams line up.
func newStateTestDevice(t *testing.T, seed int64) *Device {
	t.Helper()
	netModel, err := network.NewModelSeeded(network.PaperMatrix(), network.StateCell, seed)
	if err != nil {
		t.Fatal(err)
	}
	battery, err := energy.NewBattery(energy.BatteryConfig{}, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	faults, err := network.NewFaultModelSeeded(network.FaultConfig{CellLoss: 0.2, CellDisconnect: 0.1}, seed+2)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := lyapunov.New(lyapunov.Config{V: 1000, Kappa: 3000})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(DeviceConfig{
		User:              7,
		Strategy:          &RichNote{},
		WeeklyBudgetBytes: 100 << 20,
		Epoch:             time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC),
		Network:           netModel,
		Capacity:          network.DefaultCapacity(),
		Battery:           battery,
		Transfer:          energy.DefaultTransferModel(),
		Faults:            faults,
		Controller:        ctl,
		Collector:         metrics.NewCollector(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func stateTestItems(round int, n int) []Queued {
	items := make([]Queued, 0, n)
	for i := 0; i < n; i++ {
		items = append(items, Queued{
			Rich: notif.RichItem{
				Item: notif.Item{
					ID:        notif.ItemID(round*100 + i),
					Kind:      notif.KindAudio,
					Recipient: 7,
				},
				ContentUtility: 0.5,
				Presentations: []notif.Presentation{
					{Level: 1, Size: 200, Utility: 0.3},
					{Level: 2, Size: 2 << 20, Utility: 0.9},
				},
				ArrivedRound: round,
			},
			TrueUc: 0.5,
		})
	}
	return items
}

// TestDeviceStateRoundTrip runs a device for a while, exports its state into
// a freshly built replica, and requires both to walk identical trajectories
// afterwards — the component-level version of the server's bit-identical
// crash-recovery guarantee.
func TestDeviceStateRoundTrip(t *testing.T) {
	const seed = 42
	orig := newStateTestDevice(t, seed)
	for round := 0; round < 30; round++ {
		if round%3 == 0 {
			if err := orig.Enqueue(stateTestItems(round, 2)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := orig.RunRound(round); err != nil {
			t.Fatal(err)
		}
	}

	exported := orig.ExportState()
	replica := newStateTestDevice(t, seed)
	if err := replica.RestoreState(exported); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if !reflect.DeepEqual(replica.ExportState(), exported) {
		t.Fatal("replica export differs from the state it was restored from")
	}

	for round := 30; round < 60; round++ {
		if round%4 == 0 {
			batch := stateTestItems(round, 1)
			if err := orig.Enqueue(batch); err != nil {
				t.Fatal(err)
			}
			if err := replica.Enqueue(stateTestItems(round, 1)); err != nil {
				t.Fatal(err)
			}
		}
		ro, errO := orig.RunRound(round)
		rr, errR := replica.RunRound(round)
		if (errO == nil) != (errR == nil) {
			t.Fatalf("round %d: error divergence: %v vs %v", round, errO, errR)
		}
		if !reflect.DeepEqual(ro, rr) {
			t.Fatalf("round %d: results diverge:\n  orig    %+v\n  replica %+v", round, ro, rr)
		}
	}
	if !reflect.DeepEqual(orig.ExportState(), replica.ExportState()) {
		t.Fatal("final states diverge after identical post-restore rounds")
	}
}

// TestDeviceRestoreRejectsMismatch pins the restore guardrails.
func TestDeviceRestoreRejectsMismatch(t *testing.T) {
	d := newStateTestDevice(t, 1)
	s := d.ExportState()

	bad := s
	bad.HasController = false
	if err := d.RestoreState(bad); err == nil {
		t.Fatal("controller presence mismatch accepted")
	}
	bad = s
	bad.BudgetDebited = 5
	bad.BudgetRefunded = 10
	if err := d.RestoreState(bad); err == nil {
		t.Fatal("refunded > debited accepted")
	}
	bad = s
	bad.BatteryLevel = 1.5
	if err := d.RestoreState(bad); err == nil {
		t.Fatal("battery level outside [0,1] accepted")
	}
	// Rewinding an RNG stream is impossible: restoring an old draw count
	// into a device that has advanced must fail.
	if _, err := d.RunRound(0); err != nil {
		t.Fatal(err)
	}
	if err := d.RestoreState(s); err == nil {
		t.Fatal("draw-count rewind accepted")
	}
}
