package mckp

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
)

// This file pins the reusable Solver to the pre-refactor greedy: the
// reference implementation below is a verbatim copy of the original
// SelectGreedy (container/heap, per-call allocation) and its
// fractionalBound. Solver.Solve must match it bit for bit on every
// instance — same assignment, same float accumulation order, same LP
// bound — because callers treat the refactor as a pure perf change.

type refHeap []upgradeCand

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return h[i].gradient > h[j].gradient }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { c, _ := x.(upgradeCand); *h = append(*h, c) }
func (h *refHeap) Pop() any          { old := *h; n := len(old); c := old[n-1]; *h = old[:n-1]; return c }

func referenceSelectGreedy(groups []Group, budget float64, opts Options) Result {
	res := Result{Assignment: make(Assignment, len(groups))}
	if budget <= 0 || len(groups) == 0 {
		return res
	}
	h := make(refHeap, 0, len(groups))
	for gi, g := range groups {
		if len(g.Choices) == 0 {
			continue
		}
		h = append(h, upgradeCand{group: gi, gradient: gradient(g, 0)})
	}
	heap.Init(&h)

	concave := groupsConcave(groups)
	lpPinned := false
	lpBound := 0.0

	remaining := budget
	for h.Len() > 0 {
		top := h[0]
		if !opts.AllowNegative && top.gradient <= 0 {
			break
		}
		g := groups[top.group]
		level := res.Assignment[top.group]
		next := g.Choices[level]
		var curValue, curWeight float64
		if level > 0 {
			curValue = g.Choices[level-1].Value
			curWeight = g.Choices[level-1].Weight
		}
		weightGain := next.Weight - curWeight
		valueGain := next.Value - curValue

		if weightGain > remaining {
			if concave && !lpPinned {
				lpBound = res.Value + valueGain*(remaining/weightGain)
				lpPinned = true
			}
			if opts.StopAtFirstMisfit {
				break
			}
			heap.Pop(&h)
			continue
		}

		res.Assignment[top.group] = level + 1
		res.Value += valueGain
		res.Weight += weightGain
		res.Upgrades++
		remaining -= weightGain

		if level+1 < len(g.Choices) {
			h[0].gradient = gradient(g, level+1)
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	switch {
	case concave && !lpPinned:
		lpBound = res.Value
	case !concave:
		lpBound = referenceFractionalBound(groups, budget)
	}
	if lpBound < res.Value {
		lpBound = res.Value
	}
	res.FractionalValue = lpBound
	return res
}

func referenceFractionalBound(groups []Group, budget float64) float64 {
	if budget <= 0 {
		return 0
	}
	type refIncrement struct {
		gradient, weight float64
	}
	incs := make([]refIncrement, 0, len(groups))
	for _, g := range groups {
		prevV, prevW := 0.0, 0.0
		for _, ci := range pruneGroup(g) {
			c := g.Choices[ci]
			dv, dw := c.Value-prevV, c.Weight-prevW
			incs = append(incs, refIncrement{gradient: dv / dw, weight: dw})
			prevV, prevW = c.Value, c.Weight
		}
	}
	sort.SliceStable(incs, func(i, j int) bool { return incs[i].gradient > incs[j].gradient })
	value, remaining := 0.0, budget
	for _, inc := range incs {
		if inc.gradient <= 0 {
			break
		}
		if inc.weight > remaining {
			value += inc.gradient * remaining
			break
		}
		value += inc.gradient * inc.weight
		remaining -= inc.weight
	}
	return value
}

// randomInstance builds a random MCKP instance. Roughly half the draws use
// concave ladders (increasing value, decreasing gradient) and half use
// arbitrary value sequences, exercising both the pinned-LP fast path and
// the hull-pruning fallback.
func randomInstance(rng *rand.Rand) ([]Group, float64) {
	n := 1 + rng.Intn(12)
	groups := make([]Group, n)
	concave := rng.Intn(2) == 0
	for gi := range groups {
		k := 1 + rng.Intn(6)
		choices := make([]Choice, k)
		w := 0.0
		if concave {
			v, grad := 0.0, 4+rng.Float64()*4
			for ci := range choices {
				dw := 1 + rng.Float64()*50
				w += dw
				grad *= 0.4 + rng.Float64()*0.55 // strictly shrinking gradient
				v += grad * dw
				choices[ci] = Choice{Value: v, Weight: w}
			}
		} else {
			for ci := range choices {
				w += 1 + rng.Float64()*50
				choices[ci] = Choice{Value: rng.Float64()*10 - 2, Weight: w}
			}
		}
		groups[gi] = Group{Choices: choices}
	}
	budget := rng.Float64() * 400
	return groups, budget
}

func assertSameResult(t *testing.T, trial int, want, got Result) {
	t.Helper()
	if got.Value != want.Value || got.Weight != want.Weight ||
		got.Upgrades != want.Upgrades || got.FractionalValue != want.FractionalValue {
		t.Fatalf("trial %d: result mismatch:\n got  %+v\n want %+v", trial, got, want)
	}
	if len(got.Assignment) != len(want.Assignment) {
		t.Fatalf("trial %d: assignment length %d, want %d", trial, len(got.Assignment), len(want.Assignment))
	}
	for gi := range want.Assignment {
		if got.Assignment[gi] != want.Assignment[gi] {
			t.Fatalf("trial %d group %d: level %d, want %d", trial, gi, got.Assignment[gi], want.Assignment[gi])
		}
	}
}

// TestSolverMatchesReference checks a fresh Solver against the reference
// implementation on randomized instances across all option combinations.
func TestSolverMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	optsList := []Options{
		{},
		{AllowNegative: true},
		{StopAtFirstMisfit: true},
		{AllowNegative: true, StopAtFirstMisfit: true},
	}
	for trial := 0; trial < 400; trial++ {
		groups, budget := randomInstance(rng)
		if err := ValidateGroups(groups); err != nil {
			t.Fatalf("trial %d: bad instance: %v", trial, err)
		}
		opts := optsList[trial%len(optsList)]
		want := referenceSelectGreedy(groups, budget, opts)
		got := SelectGreedy(groups, budget, opts)
		assertSameResult(t, trial, want, got)
	}
}

// TestSolverReuseMatchesFresh drives ONE Solver through many instances and
// checks each solve against a fresh reference run: stale scratch from a
// previous (larger or smaller) instance must never leak into a result.
func TestSolverReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var s Solver
	for trial := 0; trial < 400; trial++ {
		groups, budget := randomInstance(rng)
		opts := Options{AllowNegative: trial%2 == 0}
		want := referenceSelectGreedy(groups, budget, opts)
		got := s.Solve(groups, budget, opts)
		assertSameResult(t, trial, want, got)
	}
}

// TestSolveZeroAllocSteadyState pins the tentpole property: after warmup,
// Solve allocates nothing.
func TestSolveZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	groups, budget := randomInstance(rng)
	var s Solver
	s.Solve(groups, budget, Options{}) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		s.Solve(groups, budget, Options{})
	})
	if allocs != 0 {
		t.Fatalf("Solve allocated %.1f objects/op in steady state, want 0", allocs)
	}
}
