// Package mckp solves the Multi-Choice Knapsack Problem instances that
// arise in RichNote's per-round notification selection (Section III-C and
// IV of the paper).
//
// Each content item is a group; the group's choices are its presentation
// levels 1..k with (value, weight) = (adjusted utility, byte size). The
// implicit level 0 choice has zero value and weight and corresponds to not
// delivering the item. Exactly one choice (possibly level 0) is taken per
// group, subject to a total weight budget.
//
// The package provides:
//   - SelectGreedy: the paper's Algorithm 1 — start all groups at level 0
//     and repeatedly apply the upgrade with the largest utility-size
//     gradient until the budget is exhausted. O(n + U log n) with a binary
//     max-heap, where U is the number of upgrades performed.
//   - FractionalValue: the Dantzig bound of the LP relaxation — upgrades
//     taken in gradient order with the first misfit taken fractionally;
//     the paper's optimality argument bounds the greedy integral solution
//     against it, and it upper-bounds the exact integral optimum.
//   - SelectExact: exact dynamic program over integer weights, used by
//     tests and the A1 ablation bench to measure the greedy gap.
package mckp

import (
	"errors"
	"fmt"
	"math"
)

// Choice is one selectable presentation of a group.
type Choice struct {
	// Value is the (possibly Lyapunov-adjusted) utility of the choice. It
	// may be negative after adjustment.
	Value float64
	// Weight is the resource cost (bytes). Must be positive and strictly
	// increasing across a group's choices.
	Weight float64
}

// Group is one content item with its ordered presentation choices
// (levels 1..k). The implicit level-0 choice (0 value, 0 weight) is not
// stored.
type Group struct {
	Choices []Choice
}

// Validation errors.
var (
	ErrEmptyGroup       = errors.New("mckp: group has no choices")
	ErrWeightOrder      = errors.New("mckp: choice weights not strictly increasing")
	ErrNonPositiveFirst = errors.New("mckp: first choice weight not positive")
)

// ValidateGroups checks the structural assumptions of the solvers: every
// group non-empty with strictly increasing positive weights.
func ValidateGroups(groups []Group) error {
	for gi, g := range groups {
		if len(g.Choices) == 0 {
			return fmt.Errorf("group %d: %w", gi, ErrEmptyGroup)
		}
		if g.Choices[0].Weight <= 0 {
			return fmt.Errorf("group %d: weight %f: %w", gi, g.Choices[0].Weight, ErrNonPositiveFirst)
		}
		for ci := 1; ci < len(g.Choices); ci++ {
			if g.Choices[ci].Weight <= g.Choices[ci-1].Weight {
				return fmt.Errorf("group %d choice %d: %w", gi, ci, ErrWeightOrder)
			}
		}
	}
	return nil
}

// Assignment maps each group index to its chosen level: 0 means the group
// was not selected, j in 1..k selects Choices[j-1].
type Assignment []int

// Result describes a greedy solve.
type Result struct {
	Assignment Assignment
	// Value is the total value of the integral assignment.
	Value float64
	// Weight is the total weight of the integral assignment.
	Weight float64
	// Upgrades is the number of level upgrades applied.
	Upgrades int
	// FractionalValue is the Dantzig bound of the LP relaxation: upgrades
	// taken in gradient order over the convexified groups, with the first
	// upgrade that does not fit taken fractionally. It upper-bounds both
	// the integral Value and the exact integral optimum (SelectExact).
	FractionalValue float64
}

// gradient returns the utility-size gradient of upgrading group g from
// level j to level j+1 (levels are 0-based here: j = current level, so the
// upgrade target choice is Choices[j]).
func gradient(g Group, level int) float64 {
	next := g.Choices[level] // upgrade target: level -> level+1
	var curValue, curWeight float64
	if level > 0 {
		curValue = g.Choices[level-1].Value
		curWeight = g.Choices[level-1].Weight
	}
	return (next.Value - curValue) / (next.Weight - curWeight)
}

// Options tune the greedy solver.
type Options struct {
	// AllowNegative permits upgrades with negative gradient. The paper's
	// Algorithm 1 keeps upgrading by gradient order until the budget is
	// exhausted; with Lyapunov-adjusted utilities a negative gradient means
	// the upgrade lowers the objective, so the default refuses them.
	AllowNegative bool
	// StopAtFirstMisfit mirrors Algorithm 1 literally: the first upgrade
	// that does not fit the remaining budget terminates the loop. When
	// false (default), the solver skips over misfitting upgrades and keeps
	// trying smaller ones, which strictly dominates the literal variant.
	StopAtFirstMisfit bool
}

// SelectGreedy runs Algorithm 1 of the paper on the given groups and weight
// budget and returns the chosen assignment. Groups must satisfy
// ValidateGroups; callers constructing groups from notif.RichItem values
// get this by construction.
//
// SelectGreedy is a thin wrapper over a fresh Solver, so the returned
// Assignment is caller-owned. Round loops that solve per tick should hold
// a Solver and call Solve to reuse its scratch instead.
func SelectGreedy(groups []Group, budget float64, opts Options) Result {
	var s Solver
	return s.Solve(groups, budget, opts)
}

// groupsConcave reports whether every group has strictly increasing values
// and non-increasing upgrade gradients (the paper's survey-derived ladder
// shape, which dominance pruning also produces).
func groupsConcave(groups []Group) bool {
	for _, g := range groups {
		prevV, prevW := 0.0, 0.0
		prevGrad := math.Inf(1)
		for _, c := range g.Choices {
			dv := c.Value - prevV
			if dv <= 0 {
				return false
			}
			grad := dv / (c.Weight - prevW)
			if grad > prevGrad {
				return false
			}
			prevV, prevW, prevGrad = c.Value, c.Weight, grad
		}
	}
	return true
}

// Value returns the total value and weight of an assignment over groups.
func (a Assignment) Value(groups []Group) (value, weight float64) {
	for gi, level := range a {
		if level <= 0 {
			continue
		}
		c := groups[gi].Choices[level-1]
		value += c.Value
		weight += c.Weight
	}
	return value, weight
}

// SelectExact solves the MCKP exactly by dynamic programming over integer
// weights. Weights are ceil-quantized to integers; budget is floor-
// quantized. Intended for small validation instances: time and memory are
// O(n * k * budget).
func SelectExact(groups []Group, budget int) (Assignment, float64) {
	if budget < 0 {
		budget = 0
	}
	// best[w] = max value using groups processed so far with weight <= w.
	// Zero initialization is correct: the empty selection has value 0.
	best := make([]float64, budget+1)
	choice := make([][]int, len(groups))
	for gi, g := range groups {
		choice[gi] = make([]int, budget+1)
		next := make([]float64, budget+1)
		for w := 0; w <= budget; w++ {
			next[w] = best[w] // level 0: skip the group
		}
		for ci, c := range g.Choices {
			cw := int(math.Ceil(c.Weight))
			if cw <= 0 {
				cw = 1
			}
			for w := cw; w <= budget; w++ {
				v := best[w-cw] + c.Value
				if v > next[w] {
					next[w] = v
					choice[gi][w] = ci + 1
				}
			}
		}
		best = next
	}
	// Find the best total value and backtrack.
	bestW := 0
	for w := 1; w <= budget; w++ {
		if best[w] > best[bestW] {
			bestW = w
		}
	}
	assign := make(Assignment, len(groups))
	w := bestW
	// Recompute forward tables per group is avoided by storing choice per
	// group per weight; backtrack from the last group.
	for gi := len(groups) - 1; gi >= 0; gi-- {
		lvl := choice[gi][w]
		assign[gi] = lvl
		if lvl > 0 {
			cw := int(math.Ceil(groups[gi].Choices[lvl-1].Weight))
			if cw <= 0 {
				cw = 1
			}
			w -= cw
		}
	}
	return assign, best[bestW]
}
