// Package mckp solves the Multi-Choice Knapsack Problem instances that
// arise in RichNote's per-round notification selection (Section III-C and
// IV of the paper).
//
// Each content item is a group; the group's choices are its presentation
// levels 1..k with (value, weight) = (adjusted utility, byte size). The
// implicit level 0 choice has zero value and weight and corresponds to not
// delivering the item. Exactly one choice (possibly level 0) is taken per
// group, subject to a total weight budget.
//
// The package provides:
//   - SelectGreedy: the paper's Algorithm 1 — start all groups at level 0
//     and repeatedly apply the upgrade with the largest utility-size
//     gradient until the budget is exhausted. O(n + U log n) with a binary
//     max-heap, where U is the number of upgrades performed.
//   - FractionalValue: the Dantzig bound of the LP relaxation — upgrades
//     taken in gradient order with the first misfit taken fractionally;
//     the paper's optimality argument bounds the greedy integral solution
//     against it, and it upper-bounds the exact integral optimum.
//   - SelectExact: exact dynamic program over integer weights, used by
//     tests and the A1 ablation bench to measure the greedy gap.
package mckp

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Choice is one selectable presentation of a group.
type Choice struct {
	// Value is the (possibly Lyapunov-adjusted) utility of the choice. It
	// may be negative after adjustment.
	Value float64
	// Weight is the resource cost (bytes). Must be positive and strictly
	// increasing across a group's choices.
	Weight float64
}

// Group is one content item with its ordered presentation choices
// (levels 1..k). The implicit level-0 choice (0 value, 0 weight) is not
// stored.
type Group struct {
	Choices []Choice
}

// Validation errors.
var (
	ErrEmptyGroup       = errors.New("mckp: group has no choices")
	ErrWeightOrder      = errors.New("mckp: choice weights not strictly increasing")
	ErrNonPositiveFirst = errors.New("mckp: first choice weight not positive")
)

// ValidateGroups checks the structural assumptions of the solvers: every
// group non-empty with strictly increasing positive weights.
func ValidateGroups(groups []Group) error {
	for gi, g := range groups {
		if len(g.Choices) == 0 {
			return fmt.Errorf("group %d: %w", gi, ErrEmptyGroup)
		}
		if g.Choices[0].Weight <= 0 {
			return fmt.Errorf("group %d: weight %f: %w", gi, g.Choices[0].Weight, ErrNonPositiveFirst)
		}
		for ci := 1; ci < len(g.Choices); ci++ {
			if g.Choices[ci].Weight <= g.Choices[ci-1].Weight {
				return fmt.Errorf("group %d choice %d: %w", gi, ci, ErrWeightOrder)
			}
		}
	}
	return nil
}

// Assignment maps each group index to its chosen level: 0 means the group
// was not selected, j in 1..k selects Choices[j-1].
type Assignment []int

// Result describes a greedy solve.
type Result struct {
	Assignment Assignment
	// Value is the total value of the integral assignment.
	Value float64
	// Weight is the total weight of the integral assignment.
	Weight float64
	// Upgrades is the number of level upgrades applied.
	Upgrades int
	// FractionalValue is the Dantzig bound of the LP relaxation: upgrades
	// taken in gradient order over the convexified groups, with the first
	// upgrade that does not fit taken fractionally. It upper-bounds both
	// the integral Value and the exact integral optimum (SelectExact).
	FractionalValue float64
}

// gradient returns the utility-size gradient of upgrading group g from
// level j to level j+1 (levels are 0-based here: j = current level, so the
// upgrade target choice is Choices[j]).
func gradient(g Group, level int) float64 {
	next := g.Choices[level] // upgrade target: level -> level+1
	var curValue, curWeight float64
	if level > 0 {
		curValue = g.Choices[level-1].Value
		curWeight = g.Choices[level-1].Weight
	}
	return (next.Value - curValue) / (next.Weight - curWeight)
}

// upgradeHeap is a max-heap of candidate upgrades keyed by gradient.
type upgradeCand struct {
	group    int
	gradient float64
}

type upgradeHeap []upgradeCand

func (h upgradeHeap) Len() int           { return len(h) }
func (h upgradeHeap) Less(i, j int) bool { return h[i].gradient > h[j].gradient }
func (h upgradeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *upgradeHeap) Push(x any)        { c, _ := x.(upgradeCand); *h = append(*h, c) }
func (h *upgradeHeap) Pop() any          { old := *h; n := len(old); c := old[n-1]; *h = old[:n-1]; return c }

// Options tune the greedy solver.
type Options struct {
	// AllowNegative permits upgrades with negative gradient. The paper's
	// Algorithm 1 keeps upgrading by gradient order until the budget is
	// exhausted; with Lyapunov-adjusted utilities a negative gradient means
	// the upgrade lowers the objective, so the default refuses them.
	AllowNegative bool
	// StopAtFirstMisfit mirrors Algorithm 1 literally: the first upgrade
	// that does not fit the remaining budget terminates the loop. When
	// false (default), the solver skips over misfitting upgrades and keeps
	// trying smaller ones, which strictly dominates the literal variant.
	StopAtFirstMisfit bool
}

// SelectGreedy runs Algorithm 1 of the paper on the given groups and weight
// budget and returns the chosen assignment. Groups must satisfy
// ValidateGroups; callers constructing groups from notif.RichItem values
// get this by construction.
func SelectGreedy(groups []Group, budget float64, opts Options) Result {
	res := Result{Assignment: make(Assignment, len(groups))}
	if budget <= 0 || len(groups) == 0 {
		return res
	}

	// Build the initial heap of level-0 -> level-1 upgrades in O(n).
	h := make(upgradeHeap, 0, len(groups))
	for gi, g := range groups {
		if len(g.Choices) == 0 {
			continue
		}
		h = append(h, upgradeCand{group: gi, gradient: gradient(g, 0)})
	}
	heap.Init(&h)

	// For concave groups the loop below visits upgrades in gradient order,
	// so the LP bound is pinned at the first misfit for free; otherwise it
	// needs the convex-hull pass of fractionalBound after the loop.
	concave := groupsConcave(groups)
	lpPinned := false
	lpBound := 0.0

	remaining := budget
	for h.Len() > 0 {
		top := h[0]
		if !opts.AllowNegative && top.gradient <= 0 {
			break // all remaining upgrades lower the objective
		}
		g := groups[top.group]
		level := res.Assignment[top.group]
		next := g.Choices[level]
		var curValue, curWeight float64
		if level > 0 {
			curValue = g.Choices[level-1].Value
			curWeight = g.Choices[level-1].Weight
		}
		weightGain := next.Weight - curWeight
		valueGain := next.Value - curValue

		if weightGain > remaining {
			// First misfit in gradient order: for concave groups the
			// upgrades applied so far plus the fractional share of this one
			// is exactly the LP-relaxation optimum.
			if concave && !lpPinned {
				lpBound = res.Value + valueGain*(remaining/weightGain)
				lpPinned = true
			}
			if opts.StopAtFirstMisfit {
				break
			}
			heap.Pop(&h) // this group cannot be upgraded further this round
			continue
		}

		res.Assignment[top.group] = level + 1
		res.Value += valueGain
		res.Weight += weightGain
		res.Upgrades++
		remaining -= weightGain

		if level+1 < len(g.Choices) {
			h[0].gradient = gradient(g, level+1)
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	switch {
	case concave && !lpPinned:
		// The budget never bound: the greedy took every worthwhile upgrade,
		// so the LP relaxation has nothing more to add.
		lpBound = res.Value
	case !concave:
		lpBound = fractionalBound(groups, budget)
	}
	if lpBound < res.Value {
		lpBound = res.Value
	}
	res.FractionalValue = lpBound
	return res
}

// groupsConcave reports whether every group has strictly increasing values
// and non-increasing upgrade gradients (the paper's survey-derived ladder
// shape, which dominance pruning also produces).
func groupsConcave(groups []Group) bool {
	for _, g := range groups {
		prevV, prevW := 0.0, 0.0
		prevGrad := math.Inf(1)
		for _, c := range g.Choices {
			dv := c.Value - prevV
			if dv <= 0 {
				return false
			}
			grad := dv / (c.Weight - prevW)
			if grad > prevGrad {
				return false
			}
			prevV, prevW, prevGrad = c.Value, c.Weight, grad
		}
	}
	return true
}

// fractionalBound computes the Dantzig bound for arbitrary groups: each
// group is reduced to its upper convex hull (pruneGroup) and the hull
// increments are taken in global gradient order, the first that does not
// fit fractionally. The convexified LP's feasible region contains every
// integral assignment, so the returned value upper-bounds SelectExact.
// A gradient-ordered walk over non-concave groups cannot produce this
// bound on its own: a high-gradient level hidden behind a misfitting
// lower level never surfaces in the upgrade heap.
func fractionalBound(groups []Group, budget float64) float64 {
	if budget <= 0 {
		return 0
	}
	type increment struct {
		gradient, weight float64
	}
	incs := make([]increment, 0, len(groups))
	for _, g := range groups {
		prevV, prevW := 0.0, 0.0
		for _, ci := range pruneGroup(g) {
			c := g.Choices[ci]
			dv, dw := c.Value-prevV, c.Weight-prevW
			incs = append(incs, increment{gradient: dv / dw, weight: dw})
			prevV, prevW = c.Value, c.Weight
		}
	}
	// Hull gradients strictly decrease within a group, so a stable global
	// sort preserves each group's level order (the prefix constraint).
	sort.SliceStable(incs, func(i, j int) bool { return incs[i].gradient > incs[j].gradient })
	value, remaining := 0.0, budget
	for _, inc := range incs {
		if inc.gradient <= 0 {
			break
		}
		if inc.weight > remaining {
			value += inc.gradient * remaining
			break
		}
		value += inc.gradient * inc.weight
		remaining -= inc.weight
	}
	return value
}

// Value returns the total value and weight of an assignment over groups.
func (a Assignment) Value(groups []Group) (value, weight float64) {
	for gi, level := range a {
		if level <= 0 {
			continue
		}
		c := groups[gi].Choices[level-1]
		value += c.Value
		weight += c.Weight
	}
	return value, weight
}

// SelectExact solves the MCKP exactly by dynamic programming over integer
// weights. Weights are ceil-quantized to integers; budget is floor-
// quantized. Intended for small validation instances: time and memory are
// O(n * k * budget).
func SelectExact(groups []Group, budget int) (Assignment, float64) {
	if budget < 0 {
		budget = 0
	}
	// best[w] = max value using groups processed so far with weight <= w.
	// Zero initialization is correct: the empty selection has value 0.
	best := make([]float64, budget+1)
	choice := make([][]int, len(groups))
	for gi, g := range groups {
		choice[gi] = make([]int, budget+1)
		next := make([]float64, budget+1)
		for w := 0; w <= budget; w++ {
			next[w] = best[w] // level 0: skip the group
		}
		for ci, c := range g.Choices {
			cw := int(math.Ceil(c.Weight))
			if cw <= 0 {
				cw = 1
			}
			for w := cw; w <= budget; w++ {
				v := best[w-cw] + c.Value
				if v > next[w] {
					next[w] = v
					choice[gi][w] = ci + 1
				}
			}
		}
		best = next
	}
	// Find the best total value and backtrack.
	bestW := 0
	for w := 1; w <= budget; w++ {
		if best[w] > best[bestW] {
			bestW = w
		}
	}
	assign := make(Assignment, len(groups))
	w := bestW
	// Recompute forward tables per group is avoided by storing choice per
	// group per weight; backtrack from the last group.
	for gi := len(groups) - 1; gi >= 0; gi-- {
		lvl := choice[gi][w]
		assign[gi] = lvl
		if lvl > 0 {
			cw := int(math.Ceil(groups[gi].Choices[lvl-1].Weight))
			if cw <= 0 {
				cw = 1
			}
			w -= cw
		}
	}
	return assign, best[bestW]
}
