package mckp

import (
	"math/rand"
	"testing"
)

// benchGroups builds a 1k-group, 6-level concave instance sized like one
// busy round across a shard's queues.
func benchGroups() []Group {
	rng := rand.New(rand.NewSource(5))
	groups := make([]Group, 1000)
	for gi := range groups {
		choices := make([]Choice, 6)
		w, v, grad := 0.0, 0.0, 4+rng.Float64()*4
		for ci := range choices {
			dw := 1 + rng.Float64()*50
			w += dw
			grad *= 0.4 + rng.Float64()*0.55
			v += grad * dw
			choices[ci] = Choice{Value: v, Weight: w}
		}
		groups[gi] = Group{Choices: choices}
	}
	return groups
}

// BenchmarkSelectGreedy is the steady-state hot path: one Solver reused
// across rounds. Must report 0 allocs/op.
func BenchmarkSelectGreedy(b *testing.B) {
	groups := benchGroups()
	var s Solver
	s.Solve(groups, 5000, Options{}) // warm scratch
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		s.Solve(groups, 5000, Options{})
	}
}

// BenchmarkSelectGreedyFresh is the pre-refactor behaviour — a fresh
// solver (heap, assignment) per call — kept as the before-side of the
// allocation comparison in bench_results/P1.csv.
func BenchmarkSelectGreedyFresh(b *testing.B) {
	groups := benchGroups()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		SelectGreedy(groups, 5000, Options{})
	}
}
