package mckp

import "sort"

// This file implements the reusable Algorithm 1 engine. The serving
// runtime re-solves an MCKP instance for every device on every round;
// a Solver keeps the upgrade heap, the assignment vector and the
// convex-hull increment buffers alive across solves so the steady-state
// round loop performs no heap allocation at all. SelectGreedy remains
// the one-shot entry point and is a thin wrapper over a fresh Solver.
//
// The heap operations below mirror container/heap's sift algorithms on
// the concrete candidate type: the standard library interface would box
// every pushed and popped candidate into an interface value, which is
// exactly the per-round garbage this engine exists to avoid. Because the
// sift logic is identical, a Solver produces byte-identical Results to
// the historical container/heap implementation (guarded by
// TestSolverMatchesReferenceGreedy).

// Solver is a reusable MCKP greedy engine. The zero value is ready to
// use. A Solver retains internal scratch between Solve calls and is not
// safe for concurrent use; the scheduler confines one solver per
// device/shard goroutine.
type Solver struct {
	heap       upgradeHeap
	assignment Assignment
	incs       incSorter
	kept, hull []int
}

// Solve runs Algorithm 1 of the paper on the given groups and weight
// budget and returns the chosen assignment. Groups must satisfy
// ValidateGroups; callers constructing groups from notif.RichItem values
// get this by construction.
//
// The returned Result's Assignment aliases solver-owned scratch: it is
// valid until the next Solve call on the same Solver. Callers that
// retain it across solves must copy it first.
//
// richnote:allocfree
func (s *Solver) Solve(groups []Group, budget float64, opts Options) Result {
	n := len(groups)
	if cap(s.assignment) < n {
		s.assignment = make(Assignment, n)
	} else {
		s.assignment = s.assignment[:n]
		for i := range s.assignment {
			s.assignment[i] = 0
		}
	}
	res := Result{Assignment: s.assignment}
	if budget <= 0 || n == 0 {
		return res
	}

	// Build the initial heap of level-0 -> level-1 upgrades in O(n).
	s.heap = s.heap[:0]
	for gi, g := range groups {
		if len(g.Choices) == 0 {
			continue
		}
		s.heap = append(s.heap, upgradeCand{group: gi, gradient: gradient(g, 0)})
	}
	s.heap.init()

	// For concave groups the loop below visits upgrades in gradient order,
	// so the LP bound is pinned at the first misfit for free; otherwise it
	// needs the convex-hull pass of fractionalBound after the loop.
	concave := groupsConcave(groups)
	lpPinned := false
	lpBound := 0.0

	remaining := budget
	for len(s.heap) > 0 {
		top := s.heap[0]
		if !opts.AllowNegative && top.gradient <= 0 {
			break // all remaining upgrades lower the objective
		}
		g := groups[top.group]
		level := res.Assignment[top.group]
		next := g.Choices[level]
		var curValue, curWeight float64
		if level > 0 {
			curValue = g.Choices[level-1].Value
			curWeight = g.Choices[level-1].Weight
		}
		weightGain := next.Weight - curWeight
		valueGain := next.Value - curValue

		if weightGain > remaining {
			// First misfit in gradient order: for concave groups the
			// upgrades applied so far plus the fractional share of this one
			// is exactly the LP-relaxation optimum.
			if concave && !lpPinned {
				lpBound = res.Value + valueGain*(remaining/weightGain)
				lpPinned = true
			}
			if opts.StopAtFirstMisfit {
				break
			}
			s.heap.popTop() // this group cannot be upgraded further this round
			continue
		}

		res.Assignment[top.group] = level + 1
		res.Value += valueGain
		res.Weight += weightGain
		res.Upgrades++
		remaining -= weightGain

		if level+1 < len(g.Choices) {
			s.heap[0].gradient = gradient(g, level+1)
			s.heap.fixTop()
		} else {
			s.heap.popTop()
		}
	}
	switch {
	case concave && !lpPinned:
		// The budget never bound: the greedy took every worthwhile upgrade,
		// so the LP relaxation has nothing more to add.
		lpBound = res.Value
	case !concave:
		lpBound = s.fractionalBound(groups, budget)
	}
	if lpBound < res.Value {
		lpBound = res.Value
	}
	res.FractionalValue = lpBound
	return res
}

// upgradeHeap is a max-heap of candidate upgrades keyed by gradient,
// operated on directly (no container/heap boxing).
type upgradeCand struct {
	group    int
	gradient float64
}

type upgradeHeap []upgradeCand

// siftDown is container/heap's down on the concrete type: restore the
// heap property for the subtree rooted at i0 within h[:n].
func (h upgradeHeap) siftDown(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].gradient > h[j1].gradient {
			j = j2
		}
		if h[j].gradient <= h[i].gradient {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// init establishes the heap property in O(n), as container/heap.Init.
func (h upgradeHeap) init() {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		h.siftDown(i, n)
	}
}

// fixTop re-establishes the ordering after h[0]'s gradient changed, as
// container/heap.Fix(h, 0) (sifting up from the root is a no-op).
func (h upgradeHeap) fixTop() {
	h.siftDown(0, len(h))
}

// popTop removes the maximum candidate, as container/heap.Pop but
// discarding the value.
func (h *upgradeHeap) popTop() {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	old.siftDown(0, n)
	*h = old[:n]
}

// increment is one convex-hull upgrade step of a group, used by the
// Dantzig bound.
type increment struct {
	gradient, weight float64
}

// incSorter orders hull increments by descending gradient. Sorting goes
// through sort.Stable on a *incSorter so the interface conversion stores
// a pointer and the hot path stays allocation-free (sort.SliceStable
// would allocate its closure and swapper every call).
type incSorter []increment

func (s incSorter) Len() int           { return len(s) }
func (s incSorter) Less(i, j int) bool { return s[i].gradient > s[j].gradient }
func (s incSorter) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// fractionalBound computes the Dantzig bound for arbitrary groups: each
// group is reduced to its upper convex hull (pruneGroup) and the hull
// increments are taken in global gradient order, the first that does not
// fit fractionally. The convexified LP's feasible region contains every
// integral assignment, so the returned value upper-bounds SelectExact.
// A gradient-ordered walk over non-concave groups cannot produce this
// bound on its own: a high-gradient level hidden behind a misfitting
// lower level never surfaces in the upgrade heap.
func (s *Solver) fractionalBound(groups []Group, budget float64) float64 {
	if budget <= 0 {
		return 0
	}
	s.incs = s.incs[:0]
	for _, g := range groups {
		prevV, prevW := 0.0, 0.0
		var idx []int
		idx, s.kept, s.hull = pruneGroupInto(g, s.kept, s.hull)
		for _, ci := range idx {
			c := g.Choices[ci]
			dv, dw := c.Value-prevV, c.Weight-prevW
			s.incs = append(s.incs, increment{gradient: dv / dw, weight: dw})
			prevV, prevW = c.Value, c.Weight
		}
	}
	// Hull gradients strictly decrease within a group, so a stable global
	// sort preserves each group's level order (the prefix constraint).
	sort.Stable(&s.incs)
	value, remaining := 0.0, budget
	for _, inc := range s.incs {
		if inc.gradient <= 0 {
			break
		}
		if inc.weight > remaining {
			value += inc.gradient * remaining
			break
		}
		value += inc.gradient * inc.weight
		remaining -= inc.weight
	}
	return value
}
