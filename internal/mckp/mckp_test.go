package mckp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// monoGroups builds groups with strictly increasing weights and
// non-decreasing values (the paper's presentation invariant).
func monoGroups(rng *rand.Rand, n, maxK int) []Group {
	groups := make([]Group, n)
	for i := range groups {
		k := 1 + rng.Intn(maxK)
		choices := make([]Choice, k)
		w, v := 0.0, 0.0
		for j := range choices {
			w += 1 + float64(rng.Intn(20))
			v += rng.Float64() * 5
			choices[j] = Choice{Value: v, Weight: w}
		}
		groups[i].Choices = choices
	}
	return groups
}

func TestValidateGroups(t *testing.T) {
	cases := []struct {
		name   string
		groups []Group
		ok     bool
	}{
		{"valid", []Group{{Choices: []Choice{{1, 1}, {2, 2}}}}, true},
		{"empty group", []Group{{}}, false},
		{"zero first weight", []Group{{Choices: []Choice{{1, 0}}}}, false},
		{"non-increasing weights", []Group{{Choices: []Choice{{1, 2}, {2, 2}}}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateGroups(tc.groups)
			if (err == nil) != tc.ok {
				t.Fatalf("ValidateGroups: err=%v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestSelectGreedySingleGroupPicksBestAffordable(t *testing.T) {
	g := []Group{{Choices: []Choice{
		{Value: 1, Weight: 10},
		{Value: 1.8, Weight: 20},
		{Value: 2.2, Weight: 40},
	}}}
	res := SelectGreedy(g, 25, Options{})
	if res.Assignment[0] != 2 {
		t.Fatalf("chose level %d, want 2", res.Assignment[0])
	}
	if math.Abs(res.Value-1.8) > 1e-12 || math.Abs(res.Weight-20) > 1e-12 {
		t.Fatalf("value=%f weight=%f, want 1.8/20", res.Value, res.Weight)
	}
}

func TestSelectGreedyZeroBudget(t *testing.T) {
	g := monoGroups(rand.New(rand.NewSource(1)), 5, 4)
	res := SelectGreedy(g, 0, Options{})
	for i, lvl := range res.Assignment {
		if lvl != 0 {
			t.Fatalf("group %d at level %d with zero budget", i, lvl)
		}
	}
	if res.Value != 0 || res.Weight != 0 {
		t.Fatalf("nonzero value/weight with zero budget: %+v", res)
	}
}

func TestSelectGreedyRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		g := monoGroups(rng, 20, 6)
		budget := rng.Float64() * 300
		res := SelectGreedy(g, budget, Options{})
		if res.Weight > budget+1e-9 {
			t.Fatalf("weight %f exceeds budget %f", res.Weight, budget)
		}
		v, w := res.Assignment.Value(g)
		if math.Abs(v-res.Value) > 1e-9 || math.Abs(w-res.Weight) > 1e-9 {
			t.Fatalf("reported value/weight (%f, %f) disagree with assignment (%f, %f)",
				res.Value, res.Weight, v, w)
		}
	}
}

func TestSelectGreedyPrefersHighGradient(t *testing.T) {
	// Two items, budget fits exactly one level-1 presentation. The one with
	// higher value-per-byte must win.
	g := []Group{
		{Choices: []Choice{{Value: 1.0, Weight: 10}}},
		{Choices: []Choice{{Value: 2.0, Weight: 10}}},
	}
	res := SelectGreedy(g, 10, Options{})
	if res.Assignment[0] != 0 || res.Assignment[1] != 1 {
		t.Fatalf("assignment %v, want [0 1]", res.Assignment)
	}
}

func TestSelectGreedySkipsNegativeGradients(t *testing.T) {
	// Lyapunov-adjusted utilities can make richer levels worse. The default
	// solver must not upgrade into a value decrease.
	g := []Group{{Choices: []Choice{
		{Value: 2, Weight: 10},
		{Value: 1, Weight: 20}, // upgrade loses value
	}}}
	res := SelectGreedy(g, 100, Options{})
	if res.Assignment[0] != 1 {
		t.Fatalf("chose level %d, want 1 (stop before negative upgrade)", res.Assignment[0])
	}
	resNeg := SelectGreedy(g, 100, Options{AllowNegative: true})
	if resNeg.Assignment[0] != 2 {
		t.Fatalf("AllowNegative chose level %d, want 2", resNeg.Assignment[0])
	}
}

func TestSelectGreedyStopAtFirstMisfit(t *testing.T) {
	// Big upgrade first by gradient; literal Algorithm 1 stops there, the
	// skipping variant still takes the small item.
	g := []Group{
		{Choices: []Choice{{Value: 10, Weight: 50}}}, // gradient 0.2
		{Choices: []Choice{{Value: 1, Weight: 10}}},  // gradient 0.1
	}
	literal := SelectGreedy(g, 20, Options{StopAtFirstMisfit: true})
	if literal.Assignment[0] != 0 || literal.Assignment[1] != 0 {
		t.Fatalf("literal variant assignment %v, want [0 0]", literal.Assignment)
	}
	skipping := SelectGreedy(g, 20, Options{})
	if skipping.Assignment[1] != 1 {
		t.Fatalf("skipping variant assignment %v, want group 1 selected", skipping.Assignment)
	}
	if skipping.Value < literal.Value {
		t.Fatalf("skipping variant (%f) worse than literal (%f)", skipping.Value, literal.Value)
	}
}

// TestFractionalValueBoundsExact pins the LP-bound contract on randomized
// non-concave instances with the default skip-misfit behaviour: the
// fractional value must upper-bound both the integral greedy value and the
// exact optimum. Weights are integers (bytes in practice), so SelectExact's
// quantization is lossless and the comparison is exact.
func TestFractionalValueBoundsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		g := monoGroups(rng, 1+rng.Intn(10), 5)
		budget := 10 + rng.Intn(150)
		res := SelectGreedy(g, float64(budget), Options{})
		if res.FractionalValue < res.Value-1e-9 {
			t.Fatalf("trial %d: fractional %f below integral %f", trial, res.FractionalValue, res.Value)
		}
		_, exact := SelectExact(g, budget)
		if res.FractionalValue < exact-1e-9 {
			t.Fatalf("trial %d: fractional %f below exact optimum %f", trial, res.FractionalValue, exact)
		}
	}
}

// TestFractionalValueHiddenLevel pins the counterexample that broke the
// old frozen-at-first-misfit bound: group 1's high-gradient level 2 hides
// behind a level 1 that no longer fits once group 0 is taken, so no upgrade
// walk ever sees it. Only the convex-hull bound covers the exact optimum
// (take group 1 level 2 alone: value 100).
func TestFractionalValueHiddenLevel(t *testing.T) {
	g := []Group{
		{Choices: []Choice{{Value: 5, Weight: 9.8}}},
		{Choices: []Choice{{Value: 0.5, Weight: 1}, {Value: 100, Weight: 10}}},
	}
	res := SelectGreedy(g, 10, Options{})
	_, exact := SelectExact(g, 10)
	if exact != 100 {
		t.Fatalf("exact optimum %f, want 100", exact)
	}
	if res.FractionalValue < exact {
		t.Fatalf("fractional bound %f below exact optimum %f", res.FractionalValue, exact)
	}
}

func TestFractionalValueBoundsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		g := monoGroups(rng, 15, 5)
		budget := 50 + rng.Float64()*200
		res := SelectGreedy(g, budget, Options{})
		if res.FractionalValue < res.Value-1e-9 {
			t.Fatalf("fractional value %f below integral %f", res.FractionalValue, res.Value)
		}
	}
}

// For concave groups (diminishing returns, the paper's survey-derived
// shape), the greedy integral solution is within one upgrade of the exact
// optimum; we check the weaker, always-true property that exact >= greedy
// and that greedy is within the fractional bound of exact.
func TestGreedyVersusExactOnConcaveInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		groups := make([]Group, n)
		for i := range groups {
			k := 1 + rng.Intn(4)
			choices := make([]Choice, k)
			// Constant weight step and halving value gains give strictly
			// decreasing gradients: a concave (convex-hull complete) group.
			step := float64(1 + rng.Intn(6))
			w := 0.0
			gain := 2 + rng.Float64()*4
			v := 0.0
			for j := range choices {
				w += step
				v += gain
				gain *= 0.5
				choices[j] = Choice{Value: v, Weight: w}
			}
			groups[i].Choices = choices
		}
		budget := 5 + rng.Intn(40)
		greedy := SelectGreedy(groups, float64(budget), Options{})
		_, exact := SelectExact(groups, budget)
		if exact < greedy.Value-1e-9 {
			t.Fatalf("exact %f below greedy %f", exact, greedy.Value)
		}
		// The paper's bound: greedy integral misses at most the last
		// fractional upgrade, so the fractional value must reach the exact
		// optimum on concave instances.
		if greedy.FractionalValue < exact-1e-9 {
			t.Errorf("trial %d: fractional bound %f below exact %f (gap %.3f)",
				trial, greedy.FractionalValue, exact, exact-greedy.FractionalValue)
		}
	}
}

func TestSelectExactTiny(t *testing.T) {
	groups := []Group{
		{Choices: []Choice{{Value: 6, Weight: 2}, {Value: 10, Weight: 4}}},
		{Choices: []Choice{{Value: 4, Weight: 3}}},
	}
	assign, value := SelectExact(groups, 5)
	// Best: group 0 level 1 (6,2) + group 1 level 1 (4,3) = 10 at weight 5;
	// alternative group 0 level 2 alone = 10 at weight 4. Both optimal.
	if value != 10 {
		t.Fatalf("exact value %f, want 10", value)
	}
	v, w := assign.Value(groups)
	if v != value {
		t.Fatalf("assignment value %f disagrees with reported %f", v, value)
	}
	if w > 5 {
		t.Fatalf("assignment weight %f exceeds budget", w)
	}
}

func TestSelectExactZeroBudget(t *testing.T) {
	groups := []Group{{Choices: []Choice{{Value: 5, Weight: 1}}}}
	assign, value := SelectExact(groups, 0)
	if value != 0 || assign[0] != 0 {
		t.Fatalf("zero budget selected something: %v value %f", assign, value)
	}
}

// Property: greedy never exceeds the budget and never reports a value
// different from its assignment's value.
func TestGreedyConsistencyProperty(t *testing.T) {
	prop := func(seed int64, budgetRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		groups := monoGroups(rng, 1+rng.Intn(25), 5)
		budget := float64(budgetRaw % 500)
		res := SelectGreedy(groups, budget, Options{})
		if res.Weight > budget+1e-9 {
			return false
		}
		v, w := res.Assignment.Value(groups)
		return math.Abs(v-res.Value) < 1e-6 && math.Abs(w-res.Weight) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: with the literal Algorithm 1 (stop at first misfit), enlarging
// the budget never lowers the greedy value — the smaller budget's upgrade
// walk is a prefix of the larger one's. (The misfit-skipping variant is
// NOT pointwise monotone: a larger budget can afford a big early upgrade
// and then miss later small ones, so only the literal variant carries this
// guarantee.)
func TestGreedyBudgetMonotonicityProperty(t *testing.T) {
	prop := func(seed int64, b1, b2 uint16) bool {
		lo, hi := float64(b1%400), float64(b2%400)
		if lo > hi {
			lo, hi = hi, lo
		}
		rng := rand.New(rand.NewSource(seed))
		groups := monoGroups(rng, 1+rng.Intn(15), 4)
		opts := Options{StopAtFirstMisfit: true}
		rlo := SelectGreedy(groups, lo, opts)
		rhi := SelectGreedy(groups, hi, opts)
		return rhi.Value >= rlo.Value-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSelectGreedy1k(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	groups := monoGroups(rng, 1000, 6)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		SelectGreedy(groups, 5000, Options{})
	}
}

func BenchmarkSelectGreedy10k(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	groups := monoGroups(rng, 10_000, 6)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		SelectGreedy(groups, 50_000, Options{})
	}
}
