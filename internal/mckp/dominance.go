package mckp

// This file implements the classical preprocessing of Sinha & Zoltners
// (1979), the paper's reference [4]: before the greedy runs, each group is
// reduced to its LP-undominated choices. The paper's Algorithm 1 skips
// this step because survey-derived presentation ladders are already
// concave ("utilities are monotone across presentations"); with
// Lyapunov-adjusted utilities that assumption can break, and the
// dominance-pruned variant then upgrades directly to the best level,
// "skipping a few in between which may have negative gradients" as the
// paper puts it. SelectGreedyDominance is exercised by the A1/A2 ablation
// benches.

// pruneGroup returns the indices (into g.Choices) of the LP-undominated
// choices of a group, in increasing weight order.
//
// A choice a is dominated when another choice has weight <= a's and value
// >= a's (with one strict). LP dominance additionally removes interior
// choices that lie below the upper convex hull of the (weight, value)
// point set extended with the implicit (0, 0) level-0 choice: taking a
// mix of its neighbors would beat taking the choice itself, so the greedy
// should jump over it.
func pruneGroup(g Group) []int {
	idx, _, _ := pruneGroupInto(g, nil, nil)
	return idx
}

// pruneGroupInto is pruneGroup with caller-provided scratch: kept and
// hull are reused (and returned grown) so a per-round caller amortizes
// them to zero allocations. The returned index slice aliases one of the
// scratch buffers and is valid until the next call with the same
// buffers.
func pruneGroupInto(g Group, keptBuf, hullBuf []int) (idx, keptOut, hullOut []int) {
	n := len(g.Choices)
	if n == 0 {
		return nil, keptBuf, hullBuf
	}
	// Plain dominance first: choices are weight-sorted by construction, so
	// keep only strictly increasing values.
	kept := keptBuf[:0]
	bestValue := 0.0 // the implicit level 0 has value 0
	for i := 0; i < n; i++ {
		if g.Choices[i].Value > bestValue {
			kept = append(kept, i)
			bestValue = g.Choices[i].Value
		}
	}
	if len(kept) <= 1 {
		return kept, kept, hullBuf
	}
	// Upper convex hull over (weight, value), anchored at (0, 0):
	// monotone-chain scan removing points with non-increasing marginal
	// gradients.
	hull := hullBuf[:0]
	for _, ci := range kept {
		for len(hull) >= 1 {
			var prevW, prevV float64
			if len(hull) >= 2 {
				prev := g.Choices[hull[len(hull)-2]]
				prevW, prevV = prev.Weight, prev.Value
			}
			last := g.Choices[hull[len(hull)-1]]
			cur := g.Choices[ci]
			// Gradient into the last hull point vs gradient from it to the
			// candidate: pop the last point when it is under the chord.
			gIn := (last.Value - prevV) / (last.Weight - prevW)
			gOut := (cur.Value - last.Value) / (cur.Weight - last.Weight)
			if gOut >= gIn {
				hull = hull[:len(hull)-1]
				continue
			}
			break
		}
		hull = append(hull, ci)
	}
	return hull, kept, hull
}

// SelectGreedyDominance runs the Sinha-Zoltners greedy: LP-dominance
// pruning per group, then gradient-ordered upgrades across the pruned
// ladders (which may skip levels of the original groups). The returned
// assignment is expressed in original level numbers.
func SelectGreedyDominance(groups []Group, budget float64) Result {
	pruned := make([]Group, len(groups))
	keptIdx := make([][]int, len(groups))
	for gi, g := range groups {
		idx := pruneGroup(g)
		keptIdx[gi] = idx
		choices := make([]Choice, len(idx))
		for i, ci := range idx {
			choices[i] = g.Choices[ci]
		}
		pruned[gi].Choices = choices
	}
	res := SelectGreedy(pruned, budget, Options{})
	// Translate pruned levels back to original levels.
	out := Result{
		Assignment:      make(Assignment, len(groups)),
		Value:           res.Value,
		Weight:          res.Weight,
		Upgrades:        res.Upgrades,
		FractionalValue: res.FractionalValue,
	}
	for gi, lvl := range res.Assignment {
		if lvl > 0 {
			out.Assignment[gi] = keptIdx[gi][lvl-1] + 1
		}
	}
	return out
}
