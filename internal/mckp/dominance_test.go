package mckp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPruneGroupRemovesDominated(t *testing.T) {
	g := Group{Choices: []Choice{
		{Value: 2, Weight: 10},
		{Value: 1.5, Weight: 20}, // dominated: heavier, less valuable
		{Value: 3, Weight: 30},
	}}
	kept := pruneGroup(g)
	if len(kept) != 2 || kept[0] != 0 || kept[1] != 2 {
		t.Fatalf("kept %v, want [0 2]", kept)
	}
}

func TestPruneGroupRemovesLPDominated(t *testing.T) {
	// The middle choice lies below the chord from (0,0)->(10,1)->(30,6):
	// gradient 0->1 is 0.1, 1->3 is 0.25 — increasing gradients mean the
	// middle point is LP-dominated (the hull jumps it).
	g := Group{Choices: []Choice{
		{Value: 1, Weight: 10},
		{Value: 2, Weight: 20}, // on the line but with rising gradient after
		{Value: 6, Weight: 30},
	}}
	kept := pruneGroup(g)
	// The convex hull anchored at origin keeps only choices with strictly
	// decreasing marginal gradients; (30, 6) has the steepest chord from
	// the origin (0.2), so earlier shallower points are jumped.
	last := kept[len(kept)-1]
	if last != 2 {
		t.Fatalf("hull must retain the best choice, kept %v", kept)
	}
	for i := 1; i < len(kept); i++ {
		a := g.Choices[kept[i-1]]
		b := g.Choices[kept[i]]
		var prevW, prevV float64
		if i >= 2 {
			p := g.Choices[kept[i-2]]
			prevW, prevV = p.Weight, p.Value
		}
		gIn := (a.Value - prevV) / (a.Weight - prevW)
		gOut := (b.Value - a.Value) / (b.Weight - a.Weight)
		if gOut >= gIn {
			t.Fatalf("hull gradients not strictly decreasing: kept %v", kept)
		}
	}
}

func TestPruneGroupConcaveKeepsAll(t *testing.T) {
	// Strictly concave ladder: nothing is dominated.
	g := Group{Choices: []Choice{
		{Value: 4, Weight: 10},
		{Value: 6, Weight: 20},
		{Value: 7, Weight: 30},
	}}
	kept := pruneGroup(g)
	if len(kept) != 3 {
		t.Fatalf("concave group pruned to %v, want all 3", kept)
	}
}

func TestPruneGroupEmpty(t *testing.T) {
	if got := pruneGroup(Group{}); got != nil {
		t.Fatalf("pruneGroup(empty) = %v, want nil", got)
	}
	// All choices valueless: nothing beats level 0.
	g := Group{Choices: []Choice{{Value: 0, Weight: 5}, {Value: -1, Weight: 9}}}
	if got := pruneGroup(g); len(got) != 0 {
		t.Fatalf("non-positive-value group kept %v", got)
	}
}

func TestSelectGreedyDominanceSkipsLevels(t *testing.T) {
	// Non-concave ladder: level 2 is a bad deal; the dominance variant
	// jumps from 0 straight to level 3, the paper's Algorithm 1 variant
	// climbs through level 2.
	groups := []Group{{Choices: []Choice{
		{Value: 0.5, Weight: 10},
		{Value: 0.6, Weight: 50},
		{Value: 9, Weight: 60},
	}}}
	dom := SelectGreedyDominance(groups, 60)
	if dom.Assignment[0] != 3 {
		t.Fatalf("dominance variant chose level %d, want 3", dom.Assignment[0])
	}
	plain := SelectGreedy(groups, 60, Options{})
	if plain.Value > dom.Value {
		t.Fatalf("plain greedy (%f) beat dominance greedy (%f)", plain.Value, dom.Value)
	}
}

func TestSelectGreedyDominanceRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		groups := monoGroups(rng, 15, 5)
		budget := rng.Float64() * 200
		res := SelectGreedyDominance(groups, budget)
		if res.Weight > budget+1e-9 {
			t.Fatalf("weight %f exceeds budget %f", res.Weight, budget)
		}
		v, w := res.Assignment.Value(groups)
		if math.Abs(v-res.Value) > 1e-9 || math.Abs(w-res.Weight) > 1e-9 {
			t.Fatalf("assignment (%f, %f) disagrees with result (%f, %f)", v, w, res.Value, res.Weight)
		}
	}
}

// Property: on concave instances the two variants agree exactly (pruning
// keeps everything, so the walks are identical).
func TestDominanceMatchesPlainOnConcaveProperty(t *testing.T) {
	prop := func(seed int64, budgetRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		groups := make([]Group, n)
		for i := range groups {
			k := 1 + rng.Intn(4)
			choices := make([]Choice, k)
			step := float64(1 + rng.Intn(5))
			w, v := 0.0, 0.0
			gain := 1 + rng.Float64()*3
			for j := range choices {
				w += step
				v += gain
				gain *= 0.5
				choices[j] = Choice{Value: v, Weight: w}
			}
			groups[i].Choices = choices
		}
		budget := float64(budgetRaw % 200)
		plain := SelectGreedy(groups, budget, Options{})
		dom := SelectGreedyDominance(groups, budget)
		return math.Abs(plain.Value-dom.Value) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with an unconstrained budget both variants saturate every
// group at its maximum-value choice, so they agree exactly. (Under tight
// budgets the two heuristics may legitimately diverge in either
// direction; neither dominates pointwise.)
func TestDominanceMatchesPlainUnconstrainedProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		groups := monoGroups(rng, 1+rng.Intn(12), 5)
		const budget = 1e12
		plain := SelectGreedy(groups, budget, Options{})
		dom := SelectGreedyDominance(groups, budget)
		return math.Abs(plain.Value-dom.Value) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSelectGreedyDominance1k(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	groups := monoGroups(rng, 1000, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectGreedyDominance(groups, 5000)
	}
}
