package media

import (
	"math"
	"testing"

	"github.com/richnote/richnote/internal/notif"
)

// eq8 is the paper's fitted logarithmic utility (Equation 8).
func eq8(d float64) float64 { return -0.397 + 0.352*math.Log(1+d) }

func audioItem() notif.Item {
	return notif.Item{ID: 1, Kind: notif.KindAudio, Meta: notif.Metadata{TrackID: 10}}
}

func TestAudioSizeBytesMatchesPaper(t *testing.T) {
	// At 160 kbps, a d-second preview is d x 20 KB.
	if got := AudioSizeBytes(10, 160); got != 200_000 {
		t.Fatalf("10s @160kbps = %d bytes, want 200000", got)
	}
	if got := AudioSizeBytes(40, 160); got != 800_000 {
		t.Fatalf("40s @160kbps = %d bytes, want 800000", got)
	}
}

func TestAudioGeneratorSixLevels(t *testing.T) {
	g, err := NewAudioGenerator(AudioConfig{Utility: eq8})
	if err != nil {
		t.Fatalf("NewAudioGenerator: %v", err)
	}
	ps, err := g.Generate(audioItem())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(ps) != 6 {
		t.Fatalf("%d levels, want 6 (meta + 5 previews)", len(ps))
	}
	r := notif.RichItem{Item: audioItem(), ContentUtility: 0.5, Presentations: ps}
	if err := r.Validate(); err != nil {
		t.Fatalf("generated ladder invalid: %v", err)
	}
	if ps[0].Size != DefaultMetadataBytes {
		t.Fatalf("level 1 size %d, want metadata only (%d)", ps[0].Size, DefaultMetadataBytes)
	}
	if math.Abs(ps[0].Utility-0.01) > 1e-9 {
		t.Fatalf("level 1 utility %f, want 0.01 (paper's ~1%% metadata share)", ps[0].Utility)
	}
	// Richest level: meta + 40 s and utility 1.
	last := ps[len(ps)-1]
	if last.Size != DefaultMetadataBytes+800_000 {
		t.Fatalf("level 6 size %d, want %d", last.Size, DefaultMetadataBytes+800_000)
	}
	if math.Abs(last.Utility-1) > 1e-9 {
		t.Fatalf("level 6 utility %f, want 1", last.Utility)
	}
}

func TestAudioGeneratorDiminishingReturns(t *testing.T) {
	g, err := NewAudioGenerator(AudioConfig{Utility: eq8})
	if err != nil {
		t.Fatalf("NewAudioGenerator: %v", err)
	}
	ps, err := g.Generate(audioItem())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Marginal utility per added second must decrease across preview
	// levels (the log curve's diminishing returns).
	prevGain := math.Inf(1)
	for i := 2; i < len(ps); i++ {
		gain := (ps[i].Utility - ps[i-1].Utility) / (ps[i].DurationSec - ps[i-1].DurationSec)
		if gain > prevGain+1e-12 {
			t.Fatalf("marginal utility rose at level %d: %f > %f", ps[i].Level, gain, prevGain)
		}
		prevGain = gain
	}
}

func TestAudioGeneratorValidation(t *testing.T) {
	if _, err := NewAudioGenerator(AudioConfig{}); err == nil {
		t.Error("nil utility accepted")
	}
	if _, err := NewAudioGenerator(AudioConfig{Utility: eq8, PreviewDurations: []float64{10, 5}}); err == nil {
		t.Error("non-increasing durations accepted")
	}
	if _, err := NewAudioGenerator(AudioConfig{Utility: eq8, MetaUtilityFraction: 1.5}); err == nil {
		t.Error("meta fraction > 1 accepted")
	}
	g, err := NewAudioGenerator(AudioConfig{Utility: eq8})
	if err != nil {
		t.Fatalf("NewAudioGenerator: %v", err)
	}
	if _, err := g.Generate(notif.Item{Kind: notif.KindImage}); err == nil {
		t.Error("image item accepted by audio generator")
	}
}

func TestImageGeneratorLadder(t *testing.T) {
	g := NewImageGenerator()
	ps, err := g.Generate(notif.Item{Kind: notif.KindImage})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(ps) != 5 { // meta + 3 thumbs + full
		t.Fatalf("%d levels, want 5", len(ps))
	}
	r := notif.RichItem{Item: notif.Item{Kind: notif.KindImage}, ContentUtility: 1, Presentations: ps}
	if err := r.Validate(); err != nil {
		t.Fatalf("image ladder invalid: %v", err)
	}
	if ps[len(ps)-1].Utility != 1 {
		t.Fatalf("full image utility %f, want 1", ps[len(ps)-1].Utility)
	}
	if _, err := g.Generate(notif.Item{Kind: notif.KindAudio}); err == nil {
		t.Error("audio item accepted by image generator")
	}
}

func TestVideoGeneratorLadder(t *testing.T) {
	g := NewVideoGenerator()
	ps, err := g.Generate(notif.Item{Kind: notif.KindVideo})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(ps) != 5 { // meta + 4 rungs
		t.Fatalf("%d levels, want 5", len(ps))
	}
	r := notif.RichItem{Item: notif.Item{Kind: notif.KindVideo}, ContentUtility: 1, Presentations: ps}
	if err := r.Validate(); err != nil {
		t.Fatalf("video ladder invalid: %v", err)
	}
	if _, err := g.Generate(notif.Item{Kind: notif.KindText}); err == nil {
		t.Error("text item accepted by video generator")
	}
}

func TestVideoGeneratorRejectsNonMonotoneRungs(t *testing.T) {
	g := &VideoGenerator{Rungs: []VideoRung{
		{30, 1200, "big"},
		{5, 400, "small"}, // smaller than previous: breaks ladder
	}}
	if _, err := g.Generate(notif.Item{Kind: notif.KindVideo}); err == nil {
		t.Fatal("non-monotone rungs accepted")
	}
}

func TestForKind(t *testing.T) {
	for _, kind := range []notif.ContentKind{notif.KindAudio, notif.KindImage, notif.KindVideo} {
		g, err := ForKind(kind, eq8)
		if err != nil {
			t.Fatalf("ForKind(%s): %v", kind, err)
		}
		if g == nil {
			t.Fatalf("ForKind(%s) returned nil", kind)
		}
	}
	if _, err := ForKind(notif.KindText, eq8); err == nil {
		t.Error("text kind accepted")
	}
}

func TestParetoPruneIllustration(t *testing.T) {
	// Figure 2(a): B is useless given A (same utility, larger size); C is
	// useless given D (same size, lower utility).
	points := []Point{
		{Name: "A", Size: 100, Utility: 2.0},
		{Name: "B", Size: 150, Utility: 2.0},
		{Name: "C", Size: 200, Utility: 2.5},
		{Name: "D", Size: 200, Utility: 3.0},
	}
	useful := ParetoPrune(points)
	if len(useful) != 2 {
		t.Fatalf("%d useful points, want 2 (A, D): %+v", len(useful), useful)
	}
	if useful[0].Name != "A" || useful[1].Name != "D" {
		t.Fatalf("retained %s, %s; want A, D", useful[0].Name, useful[1].Name)
	}
}

func TestParetoPruneProducesMonotoneLadder(t *testing.T) {
	points := []Point{
		{Name: "p1", Size: 500, Utility: 1.1},
		{Name: "p2", Size: 300, Utility: 1.4},
		{Name: "p3", Size: 800, Utility: 0.9},
		{Name: "p4", Size: 900, Utility: 2.0},
		{Name: "p5", Size: 900, Utility: 1.9},
		{Name: "p6", Size: 1200, Utility: 2.0},
	}
	useful := ParetoPrune(points)
	for i := 1; i < len(useful); i++ {
		if useful[i].Size <= useful[i-1].Size || useful[i].Utility <= useful[i-1].Utility {
			t.Fatalf("pruned ladder not strictly increasing at %d: %+v", i, useful)
		}
	}
	// No retained point may dominate another retained point.
	for i := range useful {
		for j := range useful {
			if i != j && Dominates(useful[i], useful[j]) {
				t.Fatalf("%s dominates retained %s", useful[i].Name, useful[j].Name)
			}
		}
	}
}

func TestParetoPruneEmpty(t *testing.T) {
	if got := ParetoPrune(nil); got != nil {
		t.Fatalf("ParetoPrune(nil) = %v, want nil", got)
	}
}

func TestDominates(t *testing.T) {
	a := Point{Size: 100, Utility: 2}
	b := Point{Size: 200, Utility: 2}
	if !Dominates(a, b) {
		t.Error("smaller same-utility point must dominate")
	}
	if Dominates(b, a) {
		t.Error("larger same-utility point must not dominate")
	}
	if Dominates(a, a) {
		t.Error("point must not dominate itself")
	}
}
