package media

import (
	"reflect"
	"sync"
	"testing"

	"github.com/richnote/richnote/internal/notif"
)

func testAudioGen(t *testing.T) *AudioGenerator {
	t.Helper()
	g, err := NewAudioGenerator(AudioConfig{Utility: func(d float64) float64 { return d }})
	if err != nil {
		t.Fatalf("NewAudioGenerator: %v", err)
	}
	return g
}

func cachedAudioItem(id notif.ItemID, track int64) notif.Item {
	return notif.Item{ID: id, Kind: notif.KindAudio, Meta: notif.Metadata{TrackID: track}}
}

func TestCachedGeneratorMatchesInner(t *testing.T) {
	inner := testAudioGen(t)
	cached := NewCachedGenerator(testAudioGen(t))
	for _, item := range []notif.Item{cachedAudioItem(1, 0), cachedAudioItem(2, 77), cachedAudioItem(3, 77), cachedAudioItem(4, 0)} {
		want, err := inner.Generate(item)
		if err != nil {
			t.Fatalf("inner.Generate: %v", err)
		}
		got, err := cached.Generate(item)
		if err != nil {
			t.Fatalf("cached.Generate: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("item %d: cached ladder %v != direct ladder %v", item.ID, got, want)
		}
	}
	hits, misses := cached.Stats()
	if misses != 2 || hits != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/2 (two distinct keys)", hits, misses)
	}
}

func TestCachedGeneratorReturnsPrivateCopies(t *testing.T) {
	cached := NewCachedGenerator(testAudioGen(t))
	first, err := cached.Generate(cachedAudioItem(1, 0))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	first[0].Utility = -99 // caller owns its slice; the cache must not see this
	second, err := cached.Generate(cachedAudioItem(2, 0))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if second[0].Utility == -99 {
		t.Fatal("cache returned a slice aliasing a previous caller's copy")
	}
}

func TestCachedGeneratorPropagatesErrors(t *testing.T) {
	cached := NewCachedGenerator(testAudioGen(t))
	if _, err := cached.Generate(notif.Item{ID: 1, Kind: notif.KindImage}); err == nil {
		t.Fatal("kind mismatch not reported through cache")
	}
}

func TestCachedGeneratorPassThroughWithoutKeyer(t *testing.T) {
	cached := NewCachedGenerator(NewImageGenerator())
	item := notif.Item{ID: 1, Kind: notif.KindImage}
	got, err := cached.Generate(item)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	want, err := NewImageGenerator().Generate(item)
	if err != nil {
		t.Fatalf("direct Generate: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("pass-through generator altered the ladder")
	}
	if hits, misses := cached.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("pass-through counted cache traffic: hits=%d misses=%d", hits, misses)
	}
}

func TestCachedGeneratorConcurrent(t *testing.T) {
	cached := NewCachedGenerator(testAudioGen(t))
	want, err := testAudioGen(t).Generate(cachedAudioItem(1, 0))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got, err := cached.Generate(cachedAudioItem(notif.ItemID(i), 0))
				if err != nil {
					errs[w] = err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errs[w] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("concurrent Generate: %v", err)
		}
	}
}
