// Package media implements the presentation "generators" of Section III-B:
// application-specific components that, given a content item, produce its
// discrete presentation levels 1..k with strictly increasing sizes and
// monotone utilities. Level 1 is always metadata-only; higher levels attach
// progressively larger media samples.
//
// Three generators are provided: audio previews (the paper's Spotify
// evaluation), image thumbnail ladders and video preview ladders (to
// exercise generality). The audio size model follows Section V-C: at the
// Spotify default bitrate of 160 kbps a d-second preview occupies d x 20 KB
// in addition to ~200 bytes of metadata.
package media

import (
	"errors"
	"fmt"
	"math"

	"github.com/richnote/richnote/internal/notif"
)

// DefaultMetadataBytes is the average notification metadata size (track,
// artist, album names and a URL), per the paper's Section V-C (from the
// Spotify measurements in its reference [2]).
const DefaultMetadataBytes = 200

// DefaultBitrateKbps is Spotify's default streaming bitrate.
const DefaultBitrateKbps = 160

// DefaultPreviewDurations are the preview lengths (seconds) of presentation
// levels 2..6 in the paper's evaluation.
var DefaultPreviewDurations = []float64{5, 10, 20, 30, 40}

// AudioSizeBytes returns the byte size of a d-second audio sample at the
// given bitrate. At 160 kbps this is d x 20 KB, matching the paper
// (no audio compression assumed).
func AudioSizeBytes(durationSec float64, bitrateKbps int) int64 {
	return int64(durationSec * float64(bitrateKbps) * 1000 / 8)
}

// UtilityFn maps a media-sample duration (seconds) to a raw utility score.
// The survey package produces these from fitted models; callers may also
// supply Equation 8 directly.
type UtilityFn func(durationSec float64) float64

// Generator produces the presentation ladder for a content item.
type Generator interface {
	// Generate returns presentations at levels 1..k for the item. The
	// returned slice must satisfy notif.RichItem.Validate invariants.
	Generate(item notif.Item) ([]notif.Presentation, error)
}

// Errors returned by generator constructors.
var (
	ErrNoDurations     = errors.New("media: no preview durations")
	ErrBadDurations    = errors.New("media: durations must be positive and strictly increasing")
	ErrNilUtility      = errors.New("media: nil utility function")
	ErrBadMetaFraction = errors.New("media: metadata utility fraction outside (0, 1)")
	ErrKindMismatch    = errors.New("media: generator does not support content kind")
)

// AudioGenerator builds the paper's six-level audio ladder: metadata only,
// then metadata plus previews of increasing duration.
type AudioGenerator struct {
	metadataBytes int64
	bitrateKbps   int
	durations     []float64
	utilityFn     UtilityFn
	metaFraction  float64
}

// AudioConfig configures an AudioGenerator.
type AudioConfig struct {
	// MetadataBytes defaults to DefaultMetadataBytes.
	MetadataBytes int64
	// BitrateKbps defaults to DefaultBitrateKbps.
	BitrateKbps int
	// PreviewDurations defaults to DefaultPreviewDurations; must be
	// strictly increasing and positive.
	PreviewDurations []float64
	// Utility maps preview duration to raw utility. Required.
	Utility UtilityFn
	// MetaUtilityFraction is the share of the richest level's utility
	// attributed to metadata alone (the paper uses ~1%). Defaults to 0.01.
	MetaUtilityFraction float64
}

// NewAudioGenerator validates the configuration and returns the generator.
func NewAudioGenerator(cfg AudioConfig) (*AudioGenerator, error) {
	if cfg.Utility == nil {
		return nil, ErrNilUtility
	}
	if cfg.MetadataBytes <= 0 {
		cfg.MetadataBytes = DefaultMetadataBytes
	}
	if cfg.BitrateKbps <= 0 {
		cfg.BitrateKbps = DefaultBitrateKbps
	}
	if len(cfg.PreviewDurations) == 0 {
		cfg.PreviewDurations = DefaultPreviewDurations
	}
	for i, d := range cfg.PreviewDurations {
		if d <= 0 || (i > 0 && d <= cfg.PreviewDurations[i-1]) {
			return nil, fmt.Errorf("%w: %v", ErrBadDurations, cfg.PreviewDurations)
		}
	}
	if cfg.MetaUtilityFraction == 0 {
		cfg.MetaUtilityFraction = 0.01
	}
	if cfg.MetaUtilityFraction <= 0 || cfg.MetaUtilityFraction >= 1 {
		return nil, fmt.Errorf("%w: %f", ErrBadMetaFraction, cfg.MetaUtilityFraction)
	}
	durations := append([]float64(nil), cfg.PreviewDurations...)
	return &AudioGenerator{
		metadataBytes: cfg.MetadataBytes,
		bitrateKbps:   cfg.BitrateKbps,
		durations:     durations,
		utilityFn:     cfg.Utility,
		metaFraction:  cfg.MetaUtilityFraction,
	}, nil
}

var _ Generator = (*AudioGenerator)(nil)

// Generate implements Generator. Presentation utilities are normalized so
// the richest level has utility 1; the metadata-only level receives the
// configured metadata fraction, and preview levels split the remaining
// share proportionally to the (shifted) utility function, preserving
// monotonicity.
func (g *AudioGenerator) Generate(item notif.Item) ([]notif.Presentation, error) {
	if item.Kind != notif.KindAudio {
		return nil, fmt.Errorf("%w: %s", ErrKindMismatch, item.Kind)
	}
	maxDur := g.durations[len(g.durations)-1]
	// Cap previews at the underlying track length where known.
	durations := make([]float64, 0, len(g.durations))
	for _, d := range g.durations {
		if item.Meta.TrackID != 0 && d > maxDur {
			break
		}
		durations = append(durations, d)
	}

	// Raw utility values, shifted so the smallest preview is positive.
	raw := make([]float64, len(durations))
	minRaw := math.Inf(1)
	for i, d := range durations {
		raw[i] = g.utilityFn(d)
		if raw[i] < minRaw {
			minRaw = raw[i]
		}
	}
	shift := 0.0
	if minRaw <= 0 {
		shift = -minRaw + 1e-6
	}
	maxRaw := raw[len(raw)-1] + shift

	out := make([]notif.Presentation, 0, len(durations)+1)
	out = append(out, notif.Presentation{
		Level:   1,
		Size:    g.metadataBytes,
		Utility: g.metaFraction,
		Label:   "meta",
	})
	for i, d := range durations {
		up := g.metaFraction + (1-g.metaFraction)*((raw[i]+shift)/maxRaw)
		if up > 1 {
			up = 1
		}
		prev := out[len(out)-1].Utility
		if up < prev {
			up = prev // enforce monotonicity against pathological fns
		}
		out = append(out, notif.Presentation{
			Level:       i + 2,
			Size:        g.metadataBytes + AudioSizeBytes(d, g.bitrateKbps),
			Utility:     up,
			DurationSec: d,
			BitrateKbps: g.bitrateKbps,
			Label:       fmt.Sprintf("meta+%.0fs", d),
		})
	}
	return out, nil
}

// ImageGenerator produces a thumbnail ladder for image content: metadata,
// then thumbnails of increasing resolution, then the full image.
type ImageGenerator struct {
	// Widths of the thumbnail ladder in pixels.
	Widths []int
	// BytesPerPixel approximates compressed size (JPEG ~ 0.25 B/px).
	BytesPerPixel float64
	// FullBytes is the size of the original image.
	FullBytes int64
}

var _ Generator = (*ImageGenerator)(nil)

// NewImageGenerator returns a ladder with sensible defaults.
func NewImageGenerator() *ImageGenerator {
	return &ImageGenerator{
		Widths:        []int{160, 320, 640},
		BytesPerPixel: 0.25,
		FullBytes:     2_000_000,
	}
}

// Generate implements Generator.
func (g *ImageGenerator) Generate(item notif.Item) ([]notif.Presentation, error) {
	if item.Kind != notif.KindImage {
		return nil, fmt.Errorf("%w: %s", ErrKindMismatch, item.Kind)
	}
	out := []notif.Presentation{{Level: 1, Size: DefaultMetadataBytes, Utility: 0.02, Label: "meta"}}
	// Utility grows with log of pixel count, normalized at the full image.
	maxScore := math.Log1p(float64(g.FullBytes))
	for i, w := range g.Widths {
		px := float64(w) * float64(w) * 3 / 4 // 4:3 aspect
		size := DefaultMetadataBytes + int64(px*g.BytesPerPixel)
		score := math.Log1p(float64(size)) / maxScore
		out = append(out, notif.Presentation{
			Level:   i + 2,
			Size:    size,
			Utility: clamp01(0.02 + 0.98*score),
			Label:   fmt.Sprintf("thumb%dw", w),
		})
	}
	out = append(out, notif.Presentation{
		Level:   len(g.Widths) + 2,
		Size:    DefaultMetadataBytes + g.FullBytes,
		Utility: 1,
		Label:   "full",
	})
	return out, nil
}

// VideoGenerator produces a preview ladder for video content across
// duration and vertical-resolution rungs.
type VideoGenerator struct {
	// Rungs are (duration sec, kbps) pairs in increasing size order.
	Rungs []VideoRung
}

// VideoRung is one video preview configuration.
type VideoRung struct {
	DurationSec float64
	BitrateKbps int
	Label       string
}

var _ Generator = (*VideoGenerator)(nil)

// NewVideoGenerator returns a default four-rung ladder.
func NewVideoGenerator() *VideoGenerator {
	return &VideoGenerator{Rungs: []VideoRung{
		{5, 400, "5s@240p"},
		{10, 400, "10s@240p"},
		{10, 1200, "10s@480p"},
		{30, 1200, "30s@480p"},
	}}
}

// Generate implements Generator.
func (g *VideoGenerator) Generate(item notif.Item) ([]notif.Presentation, error) {
	if item.Kind != notif.KindVideo {
		return nil, fmt.Errorf("%w: %s", ErrKindMismatch, item.Kind)
	}
	out := []notif.Presentation{{Level: 1, Size: DefaultMetadataBytes, Utility: 0.02, Label: "meta"}}
	if len(g.Rungs) == 0 {
		return out, nil
	}
	last := g.Rungs[len(g.Rungs)-1]
	maxScore := math.Sqrt(last.DurationSec) * math.Log1p(float64(last.BitrateKbps))
	prevSize := out[0].Size
	prevUtil := out[0].Utility
	for i, r := range g.Rungs {
		size := DefaultMetadataBytes + int64(r.DurationSec*float64(r.BitrateKbps)*1000/8)
		score := math.Sqrt(r.DurationSec) * math.Log1p(float64(r.BitrateKbps)) / maxScore
		util := clamp01(0.02 + 0.98*score)
		if size <= prevSize || util < prevUtil {
			return nil, fmt.Errorf("media: video rung %d (%s) breaks ladder monotonicity", i, r.Label)
		}
		out = append(out, notif.Presentation{
			Level:       i + 2,
			Size:        size,
			Utility:     util,
			DurationSec: r.DurationSec,
			BitrateKbps: r.BitrateKbps,
			Label:       r.Label,
		})
		prevSize, prevUtil = size, util
	}
	return out, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ForKind returns a default generator for the content kind using the given
// audio utility function for audio content.
func ForKind(kind notif.ContentKind, audioUtility UtilityFn) (Generator, error) {
	switch kind {
	case notif.KindAudio:
		return NewAudioGenerator(AudioConfig{Utility: audioUtility})
	case notif.KindImage:
		return NewImageGenerator(), nil
	case notif.KindVideo:
		return NewVideoGenerator(), nil
	default:
		return nil, fmt.Errorf("%w: %s", ErrKindMismatch, kind)
	}
}
