package media

import (
	"sync"
	"sync/atomic"

	"github.com/richnote/richnote/internal/notif"
)

// CacheKeyer is implemented by generators whose ladder depends on the
// item only through a small derived key. Two items with equal keys must
// receive identical presentation ladders. ok=false opts the item out of
// caching (the ladder is generated fresh).
type CacheKeyer interface {
	LadderKey(item notif.Item) (key any, ok bool)
}

// LadderKey implements CacheKeyer. An AudioGenerator's ladder is fully
// determined by its configuration plus whether the item carries a track
// to cap previews against, so at most two distinct ladders exist per
// generator and every enrichment past the first is a map lookup.
func (g *AudioGenerator) LadderKey(item notif.Item) (any, bool) {
	if item.Kind != notif.KindAudio {
		return nil, false // let Generate report the kind mismatch
	}
	type audioKey struct{ trackCapped bool }
	return audioKey{trackCapped: item.Meta.TrackID != 0}, true
}

// CachedGenerator wraps a Generator and memoizes its ladders by the
// inner generator's CacheKeyer key. Safe for concurrent use; the build
// pipeline shares one instance across all enrichment workers. Wrapping a
// generator that does not implement CacheKeyer is valid and simply
// passes every call through.
type CachedGenerator struct {
	inner Generator
	keyer CacheKeyer

	mu      sync.RWMutex
	ladders map[any][]notif.Presentation

	hits, misses atomic.Int64
}

var _ Generator = (*CachedGenerator)(nil)

// NewCachedGenerator wraps inner with ladder memoization.
func NewCachedGenerator(inner Generator) *CachedGenerator {
	c := &CachedGenerator{inner: inner, ladders: make(map[any][]notif.Presentation)}
	if k, ok := inner.(CacheKeyer); ok {
		c.keyer = k
	}
	return c
}

// Generate implements Generator. Cached ladders are returned as fresh
// copies, preserving the contract that the caller owns the slice.
func (c *CachedGenerator) Generate(item notif.Item) ([]notif.Presentation, error) {
	if c.keyer == nil {
		return c.inner.Generate(item)
	}
	key, ok := c.keyer.LadderKey(item)
	if !ok {
		return c.inner.Generate(item)
	}

	c.mu.RLock()
	cached, found := c.ladders[key]
	c.mu.RUnlock()
	if found {
		c.hits.Add(1)
		out := make([]notif.Presentation, len(cached))
		copy(out, cached)
		return out, nil
	}

	ladder, err := c.inner.Generate(item)
	if err != nil {
		return nil, err
	}
	c.misses.Add(1)
	stored := make([]notif.Presentation, len(ladder))
	copy(stored, ladder)
	c.mu.Lock()
	c.ladders[key] = stored
	c.mu.Unlock()
	return ladder, nil
}

// Stats returns how many Generate calls were served from the cache and
// how many populated it.
func (c *CachedGenerator) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
