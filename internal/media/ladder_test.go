package media

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/richnote/richnote/internal/notif"
)

func TestAudioGeneratorCustomDurations(t *testing.T) {
	g, err := NewAudioGenerator(AudioConfig{
		Utility:          eq8,
		PreviewDurations: []float64{3, 15, 60},
		BitrateKbps:      96,
		MetadataBytes:    150,
	})
	if err != nil {
		t.Fatalf("NewAudioGenerator: %v", err)
	}
	ps, err := g.Generate(audioItem())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(ps) != 4 {
		t.Fatalf("%d levels, want 4", len(ps))
	}
	if ps[0].Size != 150 {
		t.Fatalf("metadata size %d, want 150", ps[0].Size)
	}
	// 60 s at 96 kbps = 720,000 bytes.
	want := int64(150 + 720_000)
	if ps[3].Size != want {
		t.Fatalf("top level size %d, want %d", ps[3].Size, want)
	}
	if ps[3].BitrateKbps != 96 {
		t.Fatalf("bitrate %d, want 96", ps[3].BitrateKbps)
	}
}

func TestAudioGeneratorCustomMetaFraction(t *testing.T) {
	g, err := NewAudioGenerator(AudioConfig{Utility: eq8, MetaUtilityFraction: 0.2})
	if err != nil {
		t.Fatalf("NewAudioGenerator: %v", err)
	}
	ps, err := g.Generate(audioItem())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if math.Abs(ps[0].Utility-0.2) > 1e-9 {
		t.Fatalf("metadata utility %f, want 0.2", ps[0].Utility)
	}
	if math.Abs(ps[len(ps)-1].Utility-1) > 1e-9 {
		t.Fatalf("top utility %f, want 1", ps[len(ps)-1].Utility)
	}
}

func TestAudioGeneratorHandlesNegativeUtilityCurve(t *testing.T) {
	// A curve negative at short durations (like Eq. 8 below ~2 s) must be
	// shifted, not produce negative presentation utilities.
	curve := func(d float64) float64 { return -1 + 0.1*d }
	g, err := NewAudioGenerator(AudioConfig{
		Utility:          curve,
		PreviewDurations: []float64{1, 2, 4},
	})
	if err != nil {
		t.Fatalf("NewAudioGenerator: %v", err)
	}
	ps, err := g.Generate(audioItem())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rich := notif.RichItem{Item: audioItem(), ContentUtility: 1, Presentations: ps}
	if err := rich.Validate(); err != nil {
		t.Fatalf("negative-curve ladder invalid: %v", err)
	}
}

// Property: for any increasing duration set, the generated ladder
// satisfies the paper's invariants (validated by RichItem.Validate) and
// ends at utility 1.
func TestAudioLadderInvariantProperty(t *testing.T) {
	prop := func(raw [4]uint8) bool {
		durations := make([]float64, 0, 4)
		d := 0.0
		for _, r := range raw {
			d += 1 + float64(r%20)
			durations = append(durations, d)
		}
		g, err := NewAudioGenerator(AudioConfig{Utility: eq8, PreviewDurations: durations})
		if err != nil {
			return false
		}
		ps, err := g.Generate(audioItem())
		if err != nil {
			return false
		}
		rich := notif.RichItem{Item: audioItem(), ContentUtility: 0.5, Presentations: ps}
		if err := rich.Validate(); err != nil {
			return false
		}
		return math.Abs(ps[len(ps)-1].Utility-1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ParetoPrune output never exceeds input size and always
// contains the maximum-utility point.
func TestParetoPruneProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		points := make([]Point, len(raw))
		maxU := -1.0
		for i, r := range raw {
			points[i] = Point{
				Name:    "p",
				Size:    int64(r%97) + 1,
				Utility: float64(r%31) / 7,
			}
			if points[i].Utility > maxU {
				maxU = points[i].Utility
			}
		}
		pruned := ParetoPrune(points)
		if len(pruned) > len(points) {
			return false
		}
		if maxU > 0 {
			found := false
			for _, p := range pruned {
				if p.Utility == maxU {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
