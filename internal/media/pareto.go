package media

import "sort"

// Point is a candidate presentation in the size/utility trade-off space of
// Section V-B (Figure 2a): a combination of media attributes with its byte
// size and surveyed utility.
type Point struct {
	// Name identifies the attribute combination (e.g. "44kHz/20s").
	Name string
	// Size is the presentation byte size.
	Size int64
	// Utility is the surveyed utility score.
	Utility float64
}

// ParetoPrune returns the "useful" presentations of Figure 2(a): the
// maximal set where no retained point is dominated by another with equal or
// smaller size and equal or higher utility. The result is sorted by
// ascending size and has strictly increasing utility, so it forms a valid
// presentation ladder.
func ParetoPrune(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Size != sorted[j].Size {
			return sorted[i].Size < sorted[j].Size
		}
		return sorted[i].Utility > sorted[j].Utility
	})
	out := make([]Point, 0, len(sorted))
	bestUtility := 0.0
	for _, p := range sorted {
		// A point is useful only if it strictly improves utility over every
		// smaller-or-equal-sized point. Ties in size keep the higher
		// utility (sorted first).
		if len(out) > 0 && p.Size == out[len(out)-1].Size {
			continue
		}
		if p.Utility > bestUtility {
			out = append(out, p)
			bestUtility = p.Utility
		}
	}
	return out
}

// Dominates reports whether a dominates b: a is no larger and at least as
// useful, and strictly better in at least one dimension.
func Dominates(a, b Point) bool {
	if a.Size > b.Size || a.Utility < b.Utility {
		return false
	}
	return a.Size < b.Size || a.Utility > b.Utility
}
