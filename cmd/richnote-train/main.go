// Command richnote-train trains the Random Forest content-utility
// classifier of Section V-A on a (generated or loaded) trace and reports
// the five-fold cross-validation metrics the paper reports (precision
// 0.700, accuracy 0.689), plus feature importances and the out-of-bag
// error.
//
// Usage:
//
//	richnote-train [-trace FILE | -users N -rounds N -seed N]
//	               [-trees N] [-depth N] [-folds N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/ml/eval"
	"github.com/richnote/richnote/internal/ml/forest"
	"github.com/richnote/richnote/internal/sim"
	"github.com/richnote/richnote/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "richnote-train:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		tracePath  = flag.String("trace", "", "trace file (empty = generate)")
		users      = flag.Int("users", 200, "users when generating")
		rounds     = flag.Int("rounds", 168, "rounds when generating")
		seed       = flag.Int64("seed", 42, "master seed")
		trees      = flag.Int("trees", 60, "forest size")
		depth      = flag.Int("depth", 12, "max tree depth")
		folds      = flag.Int("folds", 5, "cross-validation folds")
		stratified = flag.Bool("stratified", false, "preserve class balance across folds (Weka default)")
	)
	flag.Parse()

	var tr *trace.Trace
	if *tracePath != "" {
		loaded, err := trace.ReadFile(*tracePath)
		if err != nil {
			return err
		}
		tr = loaded
	} else {
		gen, err := trace.NewGenerator(trace.Config{Users: *users, Rounds: *rounds, Seed: *seed})
		if err != nil {
			return err
		}
		tr, err = gen.Generate()
		if err != nil {
			return err
		}
	}

	features, labels := trace.Dataset(tr)
	positives := 0
	for _, l := range labels {
		positives += l
	}
	fmt.Printf("dataset: %d examples, %d features, %.1f%% positive\n",
		len(features), len(trace.FeatureNames()), 100*float64(positives)/float64(len(labels)))

	// Cross validation, the paper's evaluation protocol.
	start := time.Now()
	rng := sim.NewRNG(*seed, sim.StreamForest)
	trainer := func(x [][]float64, y []int) (eval.Classifier, error) {
		return forest.Train(x, y, forest.Config{Trees: *trees, MaxDepth: *depth, Seed: *seed})
	}
	cv := eval.CrossValidate
	if *stratified {
		cv = eval.CrossValidateStratified
	}
	total, foldResults, err := cv(features, labels, *folds, rng, trainer)
	if err != nil {
		return err
	}

	rows := make([][]string, 0, len(foldResults)+1)
	for _, f := range foldResults {
		rows = append(rows, []string{
			fmt.Sprintf("fold %d", f.Fold),
			fmt.Sprintf("%.3f", f.Confusion.Precision()),
			fmt.Sprintf("%.3f", f.Confusion.Recall()),
			fmt.Sprintf("%.3f", f.Confusion.Accuracy()),
			fmt.Sprintf("%.3f", f.Confusion.F1()),
		})
	}
	rows = append(rows, []string{
		"aggregate",
		fmt.Sprintf("%.3f", total.Precision()),
		fmt.Sprintf("%.3f", total.Recall()),
		fmt.Sprintf("%.3f", total.Accuracy()),
		fmt.Sprintf("%.3f", total.F1()),
	})
	fmt.Printf("\n%d-fold cross validation (%s):\n%s", *folds,
		time.Since(start).Round(time.Millisecond),
		metrics.Table([]string{"", "precision", "recall", "accuracy", "f1"}, rows))
	fmt.Printf("paper reference: precision 0.700, accuracy 0.689\n\n")

	// Full-data forest for OOB error and importances.
	full, err := forest.Train(features, labels, forest.Config{Trees: *trees, MaxDepth: *depth, Seed: *seed})
	if err != nil {
		return err
	}
	oob, scored := full.OOBError()
	fmt.Printf("out-of-bag error: %.3f (on %d examples)\n\nfeature importance:\n", oob, scored)
	names := trace.FeatureNames()
	for i, imp := range full.FeatureImportance() {
		fmt.Printf("  %-18s %.3f\n", names[i], imp)
	}
	return nil
}
