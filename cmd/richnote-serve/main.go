// Command richnote-serve runs the sharded online delivery service: HTTP
// ingest, per-user Lyapunov scheduling on wall-clock rounds, Prometheus
// metrics and graceful shutdown.
//
// Usage:
//
//	richnote-serve [-addr :8080] [-shards N] [-round 1s] [-virtual-round 1h]
//	               [-strategy richnote|fifo|util] [-level N] [-budget MB]
//	               [-network wifi|cell|cellonly] [-buffer N] [-highwater N]
//	               [-recent N] [-seed N] [-V f] [-kappa f]
//	               [-fault.cell-loss p] [-fault.wifi-loss p]
//	               [-fault.cell-disconnect p] [-fault.wifi-disconnect p]
//	               [-fault.max-attempts N] [-fault.degrade]
//	               [-wal.dir path] [-wal.fsync always|round|never]
//	               [-snapshot.every N]
//	               [-role standalone|node|router] [-node.name NAME]
//	               [-cluster.listen :9090] [-peers a=host:port,b=host:port]
//	               [-join host:port] [-announce.every 1s]
//
// Roles (DESIGN.md §13, §15):
//
//	standalone  the default — one process owns every shard; behavior is
//	            bit-identical to builds that predate clustering
//	node        owns the shard subset the router assigns it; serves the
//	            binary cluster transport on -cluster.listen (requires
//	            -wal.dir and -node.name); with -join it announces itself
//	            to the router's cluster listener until admitted, so new
//	            and restarted nodes join the map at runtime
//	router      stateless HTTP front + coordinator; forwards to the nodes
//	            named by -peers, owns no shard state, and accepts node
//	            join announces on -cluster.listen
//
// The server answers:
//
//	POST /v1/publish                  ingest a publication (429 on backpressure)
//	GET  /v1/users/{id}/deliveries    recent deliveries for one user
//	POST /v1/tick                     force one synchronized round
//	GET  /healthz                     liveness + per-shard round progress
//	GET  /metrics                     Prometheus text exposition
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/richnote/richnote/internal/cluster"
	"github.com/richnote/richnote/internal/core"
	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/server"
	"github.com/richnote/richnote/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "richnote-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		shards       = flag.Int("shards", 4, "independent scheduler shards")
		round        = flag.Duration("round", time.Second, "wall-clock round interval (0 = rounds only via /v1/tick)")
		virtualRound = flag.Duration("virtual-round", time.Hour, "virtual time advanced per round (budget/battery accounting)")
		strategy     = flag.String("strategy", "richnote", "scheduling strategy: richnote, fifo or util")
		level        = flag.Int("level", 3, "fixed presentation level for fifo/util")
		budgetMB     = flag.Int64("budget", 100, "weekly data budget in MB per user")
		netName      = flag.String("network", "wifi", "network model: wifi, cell or cellonly")
		buffer       = flag.Int("buffer", 1024, "per-shard ingest buffer")
		highWater    = flag.Int("highwater", 0, "ingest depth triggering 429 (0 = 3/4 of buffer)")
		recent       = flag.Int("recent", 32, "recent deliveries kept per user")
		seed         = flag.Int64("seed", 42, "master seed for per-user randomness")
		v            = flag.Float64("V", 0, "Lyapunov V (0 = default)")
		kappa        = flag.Float64("kappa", 0, "Lyapunov kappa in J/round (0 = default)")

		cellLoss       = flag.Float64("fault.cell-loss", 0, "probability a cellular transfer is lost outright")
		wifiLoss       = flag.Float64("fault.wifi-loss", 0, "probability a WiFi transfer is lost outright")
		cellDisconnect = flag.Float64("fault.cell-disconnect", 0, "probability a cellular transfer disconnects mid-stream")
		wifiDisconnect = flag.Float64("fault.wifi-disconnect", 0, "probability a WiFi transfer disconnects mid-stream")
		maxAttempts    = flag.Int("fault.max-attempts", 0, "drop an item after this many failed transfer attempts (0 = retry forever)")
		degrade        = flag.Bool("fault.degrade", false, "degrade to the next-cheaper presentation level after a failed attempt")

		walDir        = flag.String("wal.dir", "", "directory for per-shard WALs and snapshots (empty = durability off)")
		walFsync      = flag.String("wal.fsync", "round", "WAL fsync policy: always, round or never")
		snapshotEvery = flag.Int("snapshot.every", 0, "rounds between compacted snapshots (0 = default)")

		role          = flag.String("role", "standalone", "process role: standalone, node or router")
		nodeName      = flag.String("node.name", "", "cluster identity of this node (node role)")
		clusterListen = flag.String("cluster.listen", ":9090", "cluster transport listen address (node and router roles)")
		peers         = flag.String("peers", "", "comma-separated name=host:port shard-owner nodes (router role)")
		joinAddr      = flag.String("join", "", "router cluster address to announce to (node role; enables join/rejoin)")
		announceEvery = flag.Duration("announce.every", time.Second, "join announce interval (node role with -join)")
	)
	flag.Parse()

	if *role == "router" {
		return runRouter(*addr, *shards, *peers, *clusterListen)
	}
	if *role != "standalone" && *role != "node" {
		return fmt.Errorf("unknown role %q (want standalone, node or router)", *role)
	}

	fsyncPolicy, err := wal.ParseSyncPolicy(*walFsync)
	if err != nil {
		return err
	}

	var strategyKind core.StrategyKind
	switch *strategy {
	case "richnote":
		strategyKind = core.StrategyRichNote
	case "fifo":
		strategyKind = core.StrategyFIFO
	case "util":
		strategyKind = core.StrategyUtil
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}

	var matrix network.Matrix
	switch *netName {
	case "wifi":
		matrix = network.PaperMatrix()
	case "cell":
		matrix = network.AlwaysCellMatrix()
	case "cellonly":
		matrix = network.CellOnlyMatrix()
	default:
		return fmt.Errorf("unknown network model %q", *netName)
	}

	faults := network.FaultConfig{
		CellLoss:       *cellLoss,
		WifiLoss:       *wifiLoss,
		CellDisconnect: *cellDisconnect,
		WifiDisconnect: *wifiDisconnect,
	}
	var ownedShards []int // nil = all (standalone)
	if *role == "node" {
		if *nodeName == "" {
			return fmt.Errorf("node role requires -node.name")
		}
		if *walDir == "" {
			return fmt.Errorf("node role requires -wal.dir (shard handoff restores from shared storage)")
		}
		// Nodes boot owning nothing; the router's coordinator assigns
		// shards with adopt commands once the cluster forms.
		ownedShards = []int{}
	}

	s, err := server.New(server.Config{
		Shards:           *shards,
		RoundEvery:       *round,
		VirtualRound:     *virtualRound,
		IngestBuffer:     *buffer,
		HighWater:        *highWater,
		RecentDeliveries: *recent,
		Seed:             *seed,
		Faults:           faults,
		WALDir:           *walDir,
		WALFsync:         fsyncPolicy,
		SnapshotEvery:    *snapshotEvery,
		OwnedShards:      ownedShards,
		Default: server.UserConfig{
			Strategy:          strategyKind,
			FixedLevel:        *level,
			WeeklyBudgetBytes: *budgetMB << 20,
			V:                 *v,
			KappaJ:            *kappa,
			NetworkMatrix:     &matrix,
			MaxAttempts:       *maxAttempts,
			DegradeOnFailure:  *degrade,
		},
	})
	if err != nil {
		return err
	}
	if err := s.Start(); err != nil {
		return err
	}

	var node *server.Node
	if *role == "node" {
		s.SetRole("node")
		node = server.NewNode(*nodeName, s)
		if err := node.Serve(*clusterListen); err != nil {
			return err
		}
		fmt.Printf("richnote-serve: node %s serving cluster transport on %s\n", *nodeName, node.Addr())
		if *joinAddr != "" {
			// Announce until admitted, and keep announcing after: a new node
			// joins, a restarted node rejoins and reclaims its WAL-dir state,
			// and a restarted router re-learns this node exists.
			if err := node.Announce(*joinAddr, *announceEvery); err != nil {
				return err
			}
			fmt.Printf("richnote-serve: node %s announcing to %s every %s\n", *nodeName, *joinAddr, *announceEvery)
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Printf("richnote-serve: %d shards, round every %s (virtual %s), strategy %s, listening on %s\n",
		*shards, *round, *virtualRound, strategyKind, *addr)
	if faults.Enabled() {
		fmt.Printf("richnote-serve: fault injection on (cell loss %.2f disconnect %.2f, wifi loss %.2f disconnect %.2f, max attempts %d, degrade %t)\n",
			faults.CellLoss, faults.CellDisconnect, faults.WifiLoss, faults.WifiDisconnect, *maxAttempts, *degrade)
	}
	if *walDir != "" {
		fmt.Printf("richnote-serve: WAL in %s (fsync %s), snapshot every %d rounds\n",
			*walDir, fsyncPolicy, s.SnapshotEvery())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("richnote-serve: %s, draining...\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "richnote-serve: http shutdown:", err)
	}
	if node != nil {
		if err := node.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "richnote-serve: transport shutdown:", err)
		}
	}
	if err := s.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Println("richnote-serve: drained cleanly")
	return nil
}

// parsePeers parses the -peers flag: comma-separated name=host:port.
func parsePeers(s string) ([]cluster.Node, error) {
	if s == "" {
		return nil, fmt.Errorf("router role requires -peers (name=host:port,...)")
	}
	var nodes []cluster.Node
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr, ok := strings.Cut(part, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad peer %q (want name=host:port)", part)
		}
		nodes = append(nodes, cluster.Node{Name: name, Addr: addr})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("router role requires at least one peer")
	}
	return nodes, nil
}

// runRouter runs the stateless HTTP front + coordinator role.
func runRouter(addr string, shards int, peersFlag, clusterListen string) error {
	peers, err := parsePeers(peersFlag)
	if err != nil {
		return err
	}
	r, err := server.NewRouter(server.RouterConfig{Shards: shards, Peers: peers, Listen: clusterListen})
	if err != nil {
		return err
	}
	if err := r.Start(); err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: addr, Handler: r.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Printf("richnote-serve: router over %d nodes, %d shards, listening on %s (map v%d), joins on %s\n",
		len(peers), shards, addr, r.Map().Version, r.ClusterAddr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("richnote-serve: %s, stopping router...\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "richnote-serve: http shutdown:", err)
	}
	r.Stop()
	fmt.Println("richnote-serve: router stopped")
	return nil
}
