// Command richnote-serve runs the sharded online delivery service: HTTP
// ingest, per-user Lyapunov scheduling on wall-clock rounds, Prometheus
// metrics and graceful shutdown.
//
// Usage:
//
//	richnote-serve [-addr :8080] [-shards N] [-round 1s] [-virtual-round 1h]
//	               [-strategy richnote|fifo|util] [-level N] [-budget MB]
//	               [-network wifi|cell|cellonly] [-buffer N] [-highwater N]
//	               [-recent N] [-seed N] [-V f] [-kappa f]
//	               [-fault.cell-loss p] [-fault.wifi-loss p]
//	               [-fault.cell-disconnect p] [-fault.wifi-disconnect p]
//	               [-fault.max-attempts N] [-fault.degrade]
//	               [-wal.dir path] [-wal.fsync always|round|never]
//	               [-snapshot.every N]
//
// The server answers:
//
//	POST /v1/publish                  ingest a publication (429 on backpressure)
//	GET  /v1/users/{id}/deliveries    recent deliveries for one user
//	POST /v1/tick                     force one synchronized round
//	GET  /healthz                     liveness + per-shard round progress
//	GET  /metrics                     Prometheus text exposition
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/richnote/richnote/internal/core"
	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/server"
	"github.com/richnote/richnote/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "richnote-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		shards       = flag.Int("shards", 4, "independent scheduler shards")
		round        = flag.Duration("round", time.Second, "wall-clock round interval (0 = rounds only via /v1/tick)")
		virtualRound = flag.Duration("virtual-round", time.Hour, "virtual time advanced per round (budget/battery accounting)")
		strategy     = flag.String("strategy", "richnote", "scheduling strategy: richnote, fifo or util")
		level        = flag.Int("level", 3, "fixed presentation level for fifo/util")
		budgetMB     = flag.Int64("budget", 100, "weekly data budget in MB per user")
		netName      = flag.String("network", "wifi", "network model: wifi, cell or cellonly")
		buffer       = flag.Int("buffer", 1024, "per-shard ingest buffer")
		highWater    = flag.Int("highwater", 0, "ingest depth triggering 429 (0 = 3/4 of buffer)")
		recent       = flag.Int("recent", 32, "recent deliveries kept per user")
		seed         = flag.Int64("seed", 42, "master seed for per-user randomness")
		v            = flag.Float64("V", 0, "Lyapunov V (0 = default)")
		kappa        = flag.Float64("kappa", 0, "Lyapunov kappa in J/round (0 = default)")

		cellLoss       = flag.Float64("fault.cell-loss", 0, "probability a cellular transfer is lost outright")
		wifiLoss       = flag.Float64("fault.wifi-loss", 0, "probability a WiFi transfer is lost outright")
		cellDisconnect = flag.Float64("fault.cell-disconnect", 0, "probability a cellular transfer disconnects mid-stream")
		wifiDisconnect = flag.Float64("fault.wifi-disconnect", 0, "probability a WiFi transfer disconnects mid-stream")
		maxAttempts    = flag.Int("fault.max-attempts", 0, "drop an item after this many failed transfer attempts (0 = retry forever)")
		degrade        = flag.Bool("fault.degrade", false, "degrade to the next-cheaper presentation level after a failed attempt")

		walDir        = flag.String("wal.dir", "", "directory for per-shard WALs and snapshots (empty = durability off)")
		walFsync      = flag.String("wal.fsync", "round", "WAL fsync policy: always, round or never")
		snapshotEvery = flag.Int("snapshot.every", 0, "rounds between compacted snapshots (0 = default)")
	)
	flag.Parse()

	fsyncPolicy, err := wal.ParseSyncPolicy(*walFsync)
	if err != nil {
		return err
	}

	var strategyKind core.StrategyKind
	switch *strategy {
	case "richnote":
		strategyKind = core.StrategyRichNote
	case "fifo":
		strategyKind = core.StrategyFIFO
	case "util":
		strategyKind = core.StrategyUtil
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}

	var matrix network.Matrix
	switch *netName {
	case "wifi":
		matrix = network.PaperMatrix()
	case "cell":
		matrix = network.AlwaysCellMatrix()
	case "cellonly":
		matrix = network.CellOnlyMatrix()
	default:
		return fmt.Errorf("unknown network model %q", *netName)
	}

	faults := network.FaultConfig{
		CellLoss:       *cellLoss,
		WifiLoss:       *wifiLoss,
		CellDisconnect: *cellDisconnect,
		WifiDisconnect: *wifiDisconnect,
	}
	s, err := server.New(server.Config{
		Shards:           *shards,
		RoundEvery:       *round,
		VirtualRound:     *virtualRound,
		IngestBuffer:     *buffer,
		HighWater:        *highWater,
		RecentDeliveries: *recent,
		Seed:             *seed,
		Faults:           faults,
		WALDir:           *walDir,
		WALFsync:         fsyncPolicy,
		SnapshotEvery:    *snapshotEvery,
		Default: server.UserConfig{
			Strategy:          strategyKind,
			FixedLevel:        *level,
			WeeklyBudgetBytes: *budgetMB << 20,
			V:                 *v,
			KappaJ:            *kappa,
			NetworkMatrix:     &matrix,
			MaxAttempts:       *maxAttempts,
			DegradeOnFailure:  *degrade,
		},
	})
	if err != nil {
		return err
	}
	if err := s.Start(); err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Printf("richnote-serve: %d shards, round every %s (virtual %s), strategy %s, listening on %s\n",
		*shards, *round, *virtualRound, strategyKind, *addr)
	if faults.Enabled() {
		fmt.Printf("richnote-serve: fault injection on (cell loss %.2f disconnect %.2f, wifi loss %.2f disconnect %.2f, max attempts %d, degrade %t)\n",
			faults.CellLoss, faults.CellDisconnect, faults.WifiLoss, faults.WifiDisconnect, *maxAttempts, *degrade)
	}
	if *walDir != "" {
		fmt.Printf("richnote-serve: WAL in %s (fsync %s), snapshot every %d rounds\n",
			*walDir, fsyncPolicy, s.SnapshotEvery())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("richnote-serve: %s, draining...\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "richnote-serve: http shutdown:", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Println("richnote-serve: drained cleanly")
	return nil
}
