// Command richnote-lint runs the repo's invariant analyzers
// (internal/lint) over the given package patterns and exits nonzero if
// any finding survives //lint:allow suppression.
//
// Usage:
//
//	go run ./cmd/richnote-lint ./...
//	go run ./cmd/richnote-lint -list
//	go run ./cmd/richnote-lint -json ./...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/richnote/richnote/internal/lint"
)

// jsonFinding is the machine-readable shape of one finding, stable for
// the CI artifact.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	dir := flag.String("dir", ".", "directory to resolve package patterns from")
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: richnote-lint [-dir d] [-list] [-json] [packages]\n\n"+
				"Machine-checks the repo's determinism, confinement and\n"+
				"budget-accounting invariants. Defaults to ./...\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(*dir, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "richnote-lint:", err)
		os.Exit(2)
	}
	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "richnote-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "richnote-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	if !*asJSON {
		fmt.Printf("richnote-lint: ok (%d analyzers)\n", len(analyzers))
	}
}
