package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/pubsub"
	"github.com/richnote/richnote/internal/server"
)

// capacityScale sizes one capacity sweep: a ladder of resident user
// counts with a fixed-size active set, so growing the ladder grows only
// idle users — exactly the population shape the event-driven round loop
// is built for.
type capacityScale struct {
	userLadder []int
	active     int // users publishing per round (sparse: <=1% at ladder top)
	rounds     int // measured rounds
	warmup     int // unmeasured leading rounds: every fresh controller is
	// non-quiescent until its virtual energy climbs past kappa, so the
	// first few rounds step the whole population in either mode
	shards   int
	interval time.Duration // round budget a sustained node must hold
	seed     int64
}

func defaultCapacityScale(seed int64) capacityScale {
	return capacityScale{
		userLadder: []int{10_000, 30_000, 100_000, 300_000},
		active:     100,
		rounds:     40,
		warmup:     8,
		shards:     4,
		interval:   25 * time.Millisecond,
		seed:       seed,
	}
}

func quickCapacityScale(seed int64) capacityScale {
	return capacityScale{
		userLadder: []int{2_000, 20_000},
		active:     20,
		rounds:     12,
		warmup:     5,
		shards:     4,
		interval:   25 * time.Millisecond,
		seed:       seed,
	}
}

// capacityRow is one (mode, users) measurement.
type capacityRow struct {
	mode       string
	users      int
	active     int
	rounds     int
	avgRound   time.Duration
	p99Round   time.Duration
	p99Publish time.Duration
	sustained  bool
}

// runCapacity measures max sustained users/node at a fixed round interval
// for the full-scan reference ("before": every round walks every device
// and publishSnapshot re-aggregates every user) and the event-driven loop
// ("after": rounds and snapshots are O(dirty)), then writes C1.csv.
func runCapacity(outDir string, quick bool, seed int64) error {
	if seed == 0 {
		seed = 42
	}
	scale := defaultCapacityScale(seed)
	if quick {
		scale = quickCapacityScale(seed)
	}
	fmt.Printf("capacity sweep: users %v, %d active/round, %d rounds, %d shards, %s round budget\n",
		scale.userLadder, scale.active, scale.rounds, scale.shards, scale.interval)

	var rows []capacityRow
	for _, mode := range []string{"fullscan", "event"} {
		for _, users := range scale.userLadder {
			row, err := runCapacityPoint(scale, mode, users)
			if err != nil {
				return err
			}
			// Reclaim the previous point's device stacks before measuring
			// the next one, so a 300k-user heap doesn't tax a 10k run's GC.
			runtime.GC()
			rows = append(rows, row)
			fmt.Printf("  %-8s %7d users: avg round %v, p99 round %v, p99 publish %v, sustained=%v\n",
				row.mode, row.users, row.avgRound.Round(time.Microsecond),
				row.p99Round.Round(time.Microsecond), row.p99Publish.Round(time.Microsecond),
				row.sustained)
		}
	}

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("create %s: %w", outDir, err)
	}
	path := filepath.Join(outDir, "C1.csv")
	if err := os.WriteFile(path, []byte(renderCapacityCSV(rows)), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}

	fmt.Println()
	for _, mode := range []string{"fullscan", "event"} {
		max := 0
		for _, r := range rows {
			if r.mode == mode && r.sustained && r.users > max {
				max = r.users
			}
		}
		fmt.Printf("max sustained users/node (%s): %d\n", mode, max)
	}
	if flat := latencyFlatness(rows, "event"); flat > 0 {
		fmt.Printf("event-mode p99 round latency growth across a %.0fx idle-user increase: %.2fx\n",
			float64(scale.userLadder[len(scale.userLadder)-1])/float64(scale.userLadder[0]), flat)
	}
	fmt.Printf("CSV written to %s\n", path)
	return nil
}

// runCapacityPoint drives one server configuration through the sparse
// workload and measures round and publish latencies.
func runCapacityPoint(scale capacityScale, mode string, users int) (capacityRow, error) {
	m := network.PaperMatrix()
	cfg := server.Config{
		Shards:        scale.shards,
		Seed:          scale.seed,
		ForceFullScan: mode == "fullscan",
		Default: server.UserConfig{
			NetworkMatrix:     &m,
			WeeklyBudgetBytes: 1 << 30,
		},
	}
	// Register ascending so each shard's ordered insert appends at the
	// tail; capacity measures the round loop, not registration.
	cfg.Users = make([]server.UserConfig, 0, users)
	for u := 1; u <= users; u++ {
		cfg.Users = append(cfg.Users, server.UserConfig{
			User:              notif.UserID(u),
			NetworkMatrix:     &m,
			WeeklyBudgetBytes: 1 << 30,
		})
	}
	s, err := server.New(cfg)
	if err != nil {
		return capacityRow{}, err
	}
	if err := s.Start(); err != nil {
		return capacityRow{}, err
	}
	defer s.CrashStop()

	rng := rand.New(rand.NewSource(scale.seed * int64(users+1)))
	ctx := context.Background()
	roundLat := make([]time.Duration, 0, scale.rounds)
	pubLat := make([]time.Duration, 0, scale.rounds*scale.active)
	id := 0
	for r := 0; r < scale.warmup+scale.rounds; r++ {
		measured := r >= scale.warmup
		for i := 0; i < scale.active; i++ {
			recipient := notif.UserID(1 + rng.Intn(users))
			// Per-user feed topics: the broker fans a topic publication out
			// to every subscriber (each subscription keeps only its own
			// addressed items), so a single shared topic would accumulate
			// subscribers and densify the workload over time. One feed per
			// recipient keeps the active set genuinely sparse.
			topic := pubsub.TopicID{Kind: notif.TopicFriendFeed, Entity: int64(recipient)}
			id++
			item := notif.Item{
				ID:     notif.ItemID(id),
				Kind:   notif.KindAudio,
				Sender: notif.UserID(users + 1),
				Meta: notif.Metadata{
					TrackID:          int64(id),
					TrackPopularity:  80,
					ArtistPopularity: 60,
				},
				TieStrength: 0.8,
			}
			t0 := time.Now()
			err := s.Publish(topic, recipient, item)
			if measured {
				pubLat = append(pubLat, time.Since(t0))
			}
			if err != nil {
				return capacityRow{}, fmt.Errorf("%s/%d users: publish: %w", mode, users, err)
			}
		}
		t0 := time.Now()
		if err := s.Tick(ctx); err != nil {
			return capacityRow{}, fmt.Errorf("%s/%d users: tick %d: %w", mode, users, r, err)
		}
		if measured {
			roundLat = append(roundLat, time.Since(t0))
		}
	}

	var sum time.Duration
	for _, d := range roundLat {
		sum += d
	}
	row := capacityRow{
		mode:       mode,
		users:      users,
		active:     scale.active,
		rounds:     scale.rounds,
		avgRound:   sum / time.Duration(len(roundLat)),
		p99Round:   percentileDuration(roundLat, 99),
		p99Publish: percentileDuration(pubLat, 99),
	}
	row.sustained = row.p99Round <= scale.interval
	return row, nil
}

// percentileDuration is the nearest-rank percentile of the samples.
func percentileDuration(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(float64(len(sorted)) * p / 100)
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// latencyFlatness returns p99(top of ladder) / p99(bottom of ladder) for
// a mode, the "does latency stay flat as idle users grow" number.
func latencyFlatness(rows []capacityRow, mode string) float64 {
	var first, last time.Duration
	for _, r := range rows {
		if r.mode != mode {
			continue
		}
		if first == 0 {
			first = r.p99Round
		}
		last = r.p99Round
	}
	if first == 0 {
		return 0
	}
	return float64(last) / float64(first)
}

func renderCapacityCSV(rows []capacityRow) string {
	out := "mode,users,active_per_round,rounds,avg_round_us,p99_round_us,p99_publish_us,sustained\n"
	for _, r := range rows {
		out += fmt.Sprintf("%s,%d,%d,%d,%d,%d,%d,%t\n",
			r.mode, r.users, r.active, r.rounds,
			r.avgRound.Microseconds(), r.p99Round.Microseconds(),
			r.p99Publish.Microseconds(), r.sustained)
	}
	return out
}
