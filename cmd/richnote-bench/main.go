// Command richnote-bench regenerates every table and figure of the paper's
// evaluation (Section V) and writes one CSV per experiment plus aligned
// tables on stdout.
//
// Usage:
//
//	richnote-bench [-users N] [-rounds N] [-seed N] [-out DIR] [-only IDs] [-quick]
//	               [-workers N] [-cpuprofile FILE] [-memprofile FILE]
//
// The -capacity mode instead runs the serving-capacity benchmark
// (DESIGN.md §14): max sustained users per node at a fixed round interval
// under a sparse workload, comparing the event-driven round loop against
// the full-scan reference, written to C1.csv:
//
//	richnote-bench -capacity [-quick] [-seed N] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/richnote/richnote/internal/core"
	"github.com/richnote/richnote/internal/experiments"
	"github.com/richnote/richnote/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "richnote-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		users   = flag.Int("users", 0, "simulated users (0 = profile default)")
		rounds  = flag.Int("rounds", 0, "rounds (0 = profile default)")
		seed    = flag.Int64("seed", 0, "master seed (0 = profile default)")
		outDir  = flag.String("out", "bench_results", "output directory for CSVs")
		only    = flag.String("only", "", "comma-separated experiment IDs (e.g. F3a,F4a); empty = all")
		quick   = flag.Bool("quick", false, "use the reduced quick profile")
		workers = flag.Int("workers", 0, "build/run worker goroutines (0 = all CPUs)")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		prom    = flag.Bool("prom", false, "also print the Prometheus exposition of one paper-default RichNote run")
		capac   = flag.Bool("capacity", false, "run the serving-capacity benchmark (event-driven vs full-scan) instead of the paper experiments")
	)
	flag.Parse()

	if *capac {
		return runCapacity(*outDir, *quick, *seed)
	}

	stopCPU, err := obs.StartCPUProfile(*cpuProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopCPU(); err != nil {
			fmt.Fprintln(os.Stderr, "richnote-bench:", err)
		}
		if err := obs.WriteHeapProfile(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, "richnote-bench:", err)
		}
	}()

	scale := experiments.DefaultScale()
	if *quick {
		scale = experiments.QuickScale()
	}
	if *users > 0 {
		scale.Users = *users
	}
	if *rounds > 0 {
		scale.Rounds = *rounds
	}
	if *seed != 0 {
		scale.Seed = *seed
	}
	scale.Workers = *workers
	rec := obs.NewRecorder()
	scale.Recorder = rec

	fmt.Printf("building workload: %d users x %d rounds (seed %d)...\n",
		scale.Users, scale.Rounds, scale.Seed)
	start := time.Now()
	suite, err := experiments.NewSuite(scale)
	if err != nil {
		return err
	}
	fmt.Printf("workload ready in %s: %d notifications, click rate %.3f\n",
		time.Since(start).Round(time.Millisecond),
		suite.Pipeline().Trace.TotalNotifications(),
		suite.Pipeline().Trace.ClickRate())
	fmt.Printf("build phases:\n%s\n", rec)

	if *prom {
		run, err := suite.Pipeline().Run(core.RunConfig{
			Strategy:          core.StrategyRichNote,
			WeeklyBudgetBytes: 20 << 20, // the paper's 20 MB/week plan
		})
		if err != nil {
			return err
		}
		fmt.Printf("# Prometheus exposition (%s, paper defaults)\n%s\n", run.Name, run.Collector.Exposition())
	}

	var ids []string
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	results, err := suite.RunIDs(ids)
	if err != nil {
		return err
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("create %s: %w", *outDir, err)
	}
	for _, r := range results {
		fmt.Println(experiments.Render(r))
		if r.Notes != "" {
			fmt.Printf("notes: %s\n", r.Notes)
		}
		fmt.Println()
		path := filepath.Join(*outDir, r.ID+".csv")
		if err := os.WriteFile(path, []byte(experiments.RenderCSV(r)), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
	}
	fmt.Printf("CSVs written to %s/ (total %s)\n", *outDir, time.Since(start).Round(time.Millisecond))
	return nil
}
