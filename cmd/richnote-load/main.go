// Command richnote-load drives a richnote-serve instance with a closed
// loop of synthetic publications and reports achieved throughput and
// publish-latency percentiles. Workers honor 429 Retry-After, so the
// reported rates reflect what the server actually sustains under
// backpressure.
//
// Usage:
//
//	richnote-load [-url http://127.0.0.1:8080] [-events N] [-concurrency N]
//	              [-users N] [-topics N] [-friend-share f] [-seed N]
//	              [-tick-every N] [-timeout 60s]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/richnote/richnote/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "richnote-load:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		url         = flag.String("url", "http://127.0.0.1:8080", "richnote-serve base URL")
		events      = flag.Int("events", 1000, "publications to deliver")
		concurrency = flag.Int("concurrency", 8, "closed-loop workers")
		users       = flag.Int("users", 50, "recipient population (IDs 1..N)")
		topics      = flag.Int("topics", 10, "distinct topic entities per kind")
		friendShare = flag.Float64("friend-share", 0.7, "fraction of events on friend feeds")
		seed        = flag.Int64("seed", 42, "event-mix seed")
		tickEvery   = flag.Int("tick-every", 0, "POST /v1/tick after every N accepted events (for -round 0 servers)")
		timeout     = flag.Duration("timeout", 60*time.Second, "overall run deadline")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	res, err := server.RunLoad(ctx, server.LoadConfig{
		BaseURL:     *url,
		Events:      *events,
		Concurrency: *concurrency,
		Users:       *users,
		Topics:      *topics,
		FriendShare: *friendShare,
		Seed:        *seed,
		TickEvery:   *tickEvery,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	return nil
}
