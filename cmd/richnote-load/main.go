// Command richnote-load drives a richnote-serve instance (or a cluster
// router) with a closed loop of synthetic publications and reports achieved
// throughput and publish-latency percentiles. Workers honor 429/503
// Retry-After, so the reported rates reflect what the service actually
// sustains under backpressure and mid-handoff unavailability.
//
// Usage:
//
//	richnote-load [-url http://127.0.0.1:8080] [-addr URL]... [-events N]
//	              [-concurrency N] [-users N] [-topics N] [-friend-share f]
//	              [-seed N] [-tick-every N] [-timeout 60s]
//
// Repeat -addr to round-robin across several fronts; a refused connection
// rotates to the next one instead of abandoning the event.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/richnote/richnote/internal/server"
)

// addrList collects repeated -addr flags.
type addrList []string

func (a *addrList) String() string { return fmt.Sprint([]string(*a)) }

func (a *addrList) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty address")
	}
	*a = append(*a, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "richnote-load:", err)
		os.Exit(1)
	}
}

func run() error {
	var addrs addrList
	var (
		url         = flag.String("url", "http://127.0.0.1:8080", "richnote-serve base URL (ignored when -addr is given)")
		events      = flag.Int("events", 1000, "publications to deliver")
		concurrency = flag.Int("concurrency", 8, "closed-loop workers")
		users       = flag.Int("users", 50, "recipient population (IDs 1..N)")
		topics      = flag.Int("topics", 10, "distinct topic entities per kind")
		friendShare = flag.Float64("friend-share", 0.7, "fraction of events on friend feeds")
		seed        = flag.Int64("seed", 42, "event-mix seed")
		tickEvery   = flag.Int("tick-every", 0, "POST /v1/tick after every N accepted events (for -round 0 servers)")
		timeout     = flag.Duration("timeout", 60*time.Second, "overall run deadline")
	)
	flag.Var(&addrs, "addr", "front base URL; repeat to round-robin across several routers")
	flag.Parse()

	targets := []string(addrs)
	if len(targets) == 0 {
		targets = []string{*url}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	res, err := server.RunLoad(ctx, server.LoadConfig{
		BaseURLs:    targets,
		Events:      *events,
		Concurrency: *concurrency,
		Users:       *users,
		Topics:      *topics,
		FriendShare: *friendShare,
		Seed:        *seed,
		TickEvery:   *tickEvery,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	return nil
}
