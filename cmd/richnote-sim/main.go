// Command richnote-sim runs one trace-driven simulation configuration and
// prints the Section V metrics: delivery ratio, precision/recall, utility,
// energy, queuing delay and the presentation-level mix.
//
// Usage:
//
//	richnote-sim [-strategy richnote|fifo|util] [-level N] [-budget MB]
//	             [-users N] [-rounds N] [-seed N] [-network cell|cellonly|wifi]
//	             [-V f] [-kappa f] [-scorer forest|oracle|constant]
//	             [-fault.cell-loss p] [-fault.wifi-loss p]
//	             [-fault.cell-disconnect p] [-fault.wifi-disconnect p]
//	             [-fault.max-attempts N] [-fault.degrade]
//	             [-workers N] [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/richnote/richnote/internal/core"
	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/obs"
	"github.com/richnote/richnote/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "richnote-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		strategy        = flag.String("strategy", "richnote", "scheduling strategy: richnote, fifo or util")
		level           = flag.Int("level", 3, "fixed presentation level for fifo/util")
		budgetMB        = flag.Int64("budget", 20, "weekly data budget in MB")
		users           = flag.Int("users", 200, "simulated users")
		rounds          = flag.Int("rounds", 168, "rounds (hours)")
		seed            = flag.Int64("seed", 42, "master seed")
		netName         = flag.String("network", "cell", "network model: cell, cellonly or wifi")
		v               = flag.Float64("V", 0, "Lyapunov V (0 = default)")
		kappa           = flag.Float64("kappa", 0, "Lyapunov kappa in J/round (0 = default)")
		scorer          = flag.String("scorer", "forest", "content utility model: forest, oracle or constant")
		dominance       = flag.Bool("dominance", false, "use the Sinha-Zoltners LP-dominance MCKP variant")
		queuedBaselines = flag.Bool("queued-baselines", false, "give fifo/util a persistent re-ranked queue instead of the digest discipline")
		perRound        = flag.Bool("per-round-budget", false, "disable data-budget rollover")
		cellLoss        = flag.Float64("fault.cell-loss", 0, "probability a cellular transfer is lost outright")
		wifiLoss        = flag.Float64("fault.wifi-loss", 0, "probability a WiFi transfer is lost outright")
		cellDisconnect  = flag.Float64("fault.cell-disconnect", 0, "probability a cellular transfer disconnects mid-stream")
		wifiDisconnect  = flag.Float64("fault.wifi-disconnect", 0, "probability a WiFi transfer disconnects mid-stream")
		maxAttempts     = flag.Int("fault.max-attempts", 0, "drop an item after this many failed transfer attempts (0 = retry forever)")
		degrade         = flag.Bool("fault.degrade", false, "degrade to the next-cheaper presentation level after a failed attempt")
		workers         = flag.Int("workers", 0, "build/run worker goroutines (0 = all CPUs)")
		cpuProf         = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf         = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()

	stopCPU, err := obs.StartCPUProfile(*cpuProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopCPU(); err != nil {
			fmt.Fprintln(os.Stderr, "richnote-sim:", err)
		}
		if err := obs.WriteHeapProfile(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, "richnote-sim:", err)
		}
	}()

	var scorerKind core.ScorerKind
	switch *scorer {
	case "forest":
		scorerKind = core.ScorerForest
	case "oracle":
		scorerKind = core.ScorerOracle
	case "constant":
		scorerKind = core.ScorerConstant
	default:
		return fmt.Errorf("unknown scorer %q", *scorer)
	}

	var strategyKind core.StrategyKind
	switch *strategy {
	case "richnote":
		strategyKind = core.StrategyRichNote
	case "fifo":
		strategyKind = core.StrategyFIFO
	case "util":
		strategyKind = core.StrategyUtil
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}

	var matrix network.Matrix
	switch *netName {
	case "cell":
		matrix = network.AlwaysCellMatrix()
	case "cellonly":
		matrix = network.CellOnlyMatrix()
	case "wifi":
		matrix = network.PaperMatrix()
	default:
		return fmt.Errorf("unknown network model %q", *netName)
	}

	fmt.Printf("building pipeline (%d users, %d rounds, scorer %s)...\n", *users, *rounds, *scorer)
	start := time.Now()
	rec := obs.NewRecorder()
	pipeline, err := core.BuildPipeline(core.PipelineConfig{
		Trace:    trace.Config{Users: *users, Rounds: *rounds, Seed: *seed},
		Scorer:   scorerKind,
		Workers:  *workers,
		Recorder: rec,
	})
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d notifications, click rate %.3f (built in %s)\n",
		pipeline.Trace.TotalNotifications(), pipeline.Trace.ClickRate(),
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("build phases:\n%s", rec)

	faults := network.FaultConfig{
		CellLoss:       *cellLoss,
		WifiLoss:       *wifiLoss,
		CellDisconnect: *cellDisconnect,
		WifiDisconnect: *wifiDisconnect,
	}
	res, err := pipeline.Run(core.RunConfig{
		Strategy:          strategyKind,
		FixedLevel:        *level,
		WeeklyBudgetBytes: *budgetMB << 20,
		V:                 *v,
		KappaJ:            *kappa,
		NetworkMatrix:     &matrix,
		UseDominance:      *dominance,
		QueuedBaselines:   *queuedBaselines,
		PerRoundBudget:    *perRound,
		Faults:            faults,
		MaxAttempts:       *maxAttempts,
		DegradeOnFailure:  *degrade,
		Workers:           *workers,
	})
	if err != nil {
		return err
	}

	r := res.Report
	fmt.Printf("\n== %s @ %d MB/week over %s ==\n", res.Name, *budgetMB, *netName)
	fmt.Printf("delivery ratio   %.3f  (%d of %d)\n", r.DeliveryRatio(), r.Delivered, r.Arrived)
	fmt.Printf("precision        %.3f\n", r.Precision())
	fmt.Printf("recall           %.3f\n", r.Recall())
	fmt.Printf("utility          %.1f total, %.4f avg/delivery (true-utility %.1f)\n",
		r.UtilitySum, r.AvgUtility(), r.TrueUtilitySum)
	fmt.Printf("data delivered   %.1f MB/user\n", float64(r.DeliveredBytes)/(1<<20)/float64(r.Users))
	fmt.Printf("download energy  %.0f J/user\n", r.EnergyJ/float64(r.Users))
	fmt.Printf("queuing delay    %.2f rounds avg (p50 %.0f, p95 %.0f)\n",
		r.AvgDelayRounds(), r.DelayP50Rounds, r.DelayP95Rounds)
	if faults.Enabled() {
		fmt.Printf("fault injection  %d failed transfers, %d retried deliveries, %d degraded, %d dropped, %.1f J wasted\n",
			r.TransferFailures, r.RetriedDeliveries, r.DegradedDeliveries, r.Dropped, r.WastedEnergyJ)
	}
	if res.Lyapunov.Users > 0 {
		fmt.Printf("lyapunov         avgQ %.2f MB, maxQ %.2f MB, drift %.2f\n",
			res.Lyapunov.AvgQMB, res.Lyapunov.MaxQMB, res.Lyapunov.AvgDrift)
	}

	fmt.Println("\npresentation mix:")
	levels := make([]int, 0, len(r.LevelCounts))
	for lvl := range r.LevelCounts {
		levels = append(levels, lvl)
	}
	sort.Ints(levels)
	share := r.LevelShare()
	labels := map[int]string{1: "meta", 2: "meta+5s", 3: "meta+10s", 4: "meta+20s", 5: "meta+30s", 6: "meta+40s"}
	for _, lvl := range levels {
		fmt.Printf("  L%d %-9s %6d  (%.1f%%)\n", lvl, labels[lvl], r.LevelCounts[lvl], 100*share[lvl])
	}
	fmt.Printf("\nsimulated in %s\n", res.Elapsed.Round(time.Millisecond))
	return nil
}
