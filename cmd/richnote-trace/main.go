// Command richnote-trace generates a synthetic Spotify-like notification
// trace (the substitute for the paper's de-identified production logs) and
// writes it as JSON lines, or inspects an existing trace file.
//
// Usage:
//
//	richnote-trace -out trace.jsonl [-users N] [-rounds N] [-seed N] [-rate F]
//	richnote-trace -inspect trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/richnote/richnote/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "richnote-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out     = flag.String("out", "", "output path for a generated trace")
		inspect = flag.String("inspect", "", "path of an existing trace to summarize")
		users   = flag.Int("users", 200, "users")
		rounds  = flag.Int("rounds", 168, "rounds (hours)")
		seed    = flag.Int64("seed", 42, "master seed")
		rate    = flag.Float64("rate", 0, "friend-feed notifications per user per round (0 = default)")
	)
	flag.Parse()

	if *inspect != "" {
		return summarize(*inspect)
	}
	if *out == "" {
		return fmt.Errorf("either -out or -inspect is required")
	}

	gen, err := trace.NewGenerator(trace.Config{
		Users:            *users,
		Rounds:           *rounds,
		Seed:             *seed,
		FriendListenRate: *rate,
	})
	if err != nil {
		return err
	}
	start := time.Now()
	tr, err := gen.Generate()
	if err != nil {
		return err
	}
	if err := trace.WriteFile(*out, tr); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d users, %d rounds, %d notifications (click rate %.3f) in %s\n",
		*out, len(tr.Users), tr.Rounds, tr.TotalNotifications(), tr.ClickRate(),
		time.Since(start).Round(time.Millisecond))
	return nil
}

func summarize(path string) error {
	tr, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	st := trace.ComputeStats(tr)
	fmt.Printf("trace %s\n", path)
	fmt.Printf("  epoch            %s\n", tr.Epoch.Format(time.RFC3339))
	fmt.Printf("  rounds           %d x %s\n", tr.Rounds, tr.RoundLen)
	fmt.Printf("  users            %d\n", st.Users)
	fmt.Printf("  records          %d (%.2f per user-round)\n", st.Records, st.ArrivalsPerRound)
	fmt.Printf("  click rate       %.3f (mean latent interest %.3f)\n", st.ClickRate, st.MeanLatentP)
	fmt.Printf("  click delay      %.1f rounds mean\n", st.MeanClickDelayRounds)
	fmt.Printf("  volume/user      min %d, p50 %d, p95 %d, max %d\n",
		st.VolumeMin, st.VolumeP50, st.VolumeP95, st.VolumeMax)
	fmt.Printf("  burst p95        %d notifications per round\n", st.BurstP95)
	fmt.Printf("  master seed      %d\n", tr.MasterSeed)
	for topic, n := range st.PerTopic {
		fmt.Printf("  topic %-12s %d\n", topic, n)
	}
	return nil
}
