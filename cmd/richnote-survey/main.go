// Command richnote-survey runs the synthetic versions of the paper's two
// user studies (Section V-B): the presentation-rating grid with Pareto
// pruning (Figure 2a) and the stop-duration study with the Equation 8/9
// model fits (Figure 2b).
//
// Usage:
//
//	richnote-survey [-respondents N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/sim"
	"github.com/richnote/richnote/internal/survey"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "richnote-survey:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		respondents = flag.Int("respondents", 80, "stop-duration survey population (paper: 80)")
		seed        = flag.Int64("seed", 42, "seed")
	)
	flag.Parse()

	rng := sim.NewRNG(*seed, sim.StreamSurvey)

	// Study 1: presentation ratings over the 4 x 5 attribute grid.
	rated, err := survey.RunRatingSurvey(survey.RatingConfig{}, rng)
	if err != nil {
		return err
	}
	rows := make([][]string, 0, len(rated.Grid))
	for _, g := range rated.Grid {
		rows = append(rows, []string{
			g.Name(),
			fmt.Sprintf("%.2f", float64(g.SizeBytes)/(1<<20)),
			fmt.Sprintf("%.2f", g.MeanScore),
		})
	}
	fmt.Printf("presentation-rating survey (Figure 2a input):\n%s\n",
		metrics.Table([]string{"presentation", "size MB", "mean score"}, rows))

	useful := rated.UsefulPresentations()
	fmt.Printf("useful presentations after Pareto pruning (paper found 6 of 20):\n")
	for _, p := range useful {
		fmt.Printf("  %-10s %.2f MB  score %.2f\n", p.Name, float64(p.Size)/(1<<20), p.Utility)
	}

	// Study 2: stop durations and utility-model fits.
	stop, err := survey.RunStopSurvey(survey.StopConfig{Respondents: *respondents}, rng)
	if err != nil {
		return err
	}
	grid := []float64{5, 10, 15, 20, 25, 30, 35, 40}
	fit, err := stop.Fit(grid, 45)
	if err != nil {
		return err
	}
	fmt.Printf("\nstop-duration survey (%d respondents, Figure 2b input):\n", *respondents)
	cdf := stop.CDF(grid)
	for i, d := range grid {
		fmt.Printf("  util(%2.0fs) = %.3f (log fit %.3f, power fit %.3f)\n",
			d, cdf[i], fit.Log.Predict(d), fit.Power.Predict(d))
	}
	fmt.Printf("\nlogarithmic fit:  util(d) = %.3f + %.3f ln(1+d)   R² = %.3f\n", fit.Log.A, fit.Log.B, fit.Log.R2)
	fmt.Printf("paper Equation 8: util(d) = -0.397 + 0.352 ln(1+d)\n")
	fmt.Printf("polynomial fit:   util(d) = %.3f (1-d/%.0f)^%.3f    R² = %.3f\n", fit.Power.A, fit.Power.D, fit.Power.B, fit.Power.R2)
	fmt.Printf("paper Equation 9: util(d) = 0.253 (1-d/40)^2.087\n")
	if fit.LogBetter {
		fmt.Println("logarithmic family fits better — matches the paper's finding")
	} else {
		fmt.Println("WARNING: polynomial family fit better; paper found logarithmic better")
	}
	return nil
}
